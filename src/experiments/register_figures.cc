/**
 * @file
 * Registry specs for the small-matrix utilization figures (5-9) and
 * Table I.  Each spec reproduces its retired bench binary exactly:
 * same generator seeds and draw order (via the serial prepare stage),
 * same evaluation, same cell formatting.
 */

#include "circuit/netlist.h"
#include "circuit/simulator.h"
#include "common/logging.h"
#include "experiments/design_cache.h"
#include "experiments/registry.h"
#include "matrix/generate.h"

namespace spatial::experiments
{

namespace
{

Axis
percentAxis(std::vector<std::int64_t> percents)
{
    std::vector<Value> values;
    for (const auto pct : percents)
        values.emplace_back(pct);
    return Axis{"pct", std::move(values)};
}

/** Payload of one prepared matrix. */
struct MatrixInput
{
    IntMatrix weights;
};

/** Payload of fig06's paired element/bit-sparse matrices. */
struct PairedInput
{
    IntMatrix elementSparse;
    IntMatrix bitSparse;
    double measuredBitSparsity = 0.0;
};

Experiment
makeFig05()
{
    Experiment exp;
    exp.name = "fig05";
    exp.figure = "Figure 5";
    exp.title = "Figure 5: utilization vs bit-sparsity (64x64, 8-bit)";
    exp.description =
        "hardware utilization vs bit-sparsity of a 64x64 8-bit matrix";
    exp.runtime = "seconds";
    exp.columns = {"bit-sparsity %", "ones", "LUT", "FF", "LUTRAM"};
    exp.grid = Grid::cartesian({percentAxis(
        {0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100})});
    exp.prepareSeed = 505;
    exp.prepare = [](const ParamPoint &point, PrepareContext &ctx) {
        auto input = std::make_shared<MatrixInput>();
        input->weights = makeBitSparseMatrix(
            64, 64, 8, static_cast<double>(point.getInt("pct")) / 100.0,
            ctx.rng);
        return std::shared_ptr<const void>(input);
    };
    exp.evaluate = [](const ParamPoint &point, const void *input,
                      EvalContext &ctx) {
        const auto &weights =
            static_cast<const MatrixInput *>(input)->weights;
        const auto entry =
            ctx.cache.getFigure(weights, core::SignMode::Unsigned);
        const auto &p = entry->point;
        return std::vector<Row>{
            {cell(static_cast<int>(point.getInt("pct"))),
             cell(weights.onesCount()), cell(p.resources.luts),
             cell(p.resources.ffs), cell(p.resources.lutrams)}};
    };
    exp.expectedShape =
        "Expected shape: LUT ~ ones (linear), FF ~ 2x LUT, LUTRAM "
        "roughly flat wrapper cost.";
    return exp;
}

Experiment
makeFig06()
{
    Experiment exp;
    exp.name = "fig06";
    exp.figure = "Figure 6";
    exp.title = "Figure 6: element-sparse (es) vs bit-sparse (bs) cost "
                "(64x64, 8-bit)";
    exp.description =
        "element-sparse vs bit-sparse cost at matched bit-sparsity";
    exp.runtime = "seconds";
    exp.columns = {"bit-sparsity %", "LUT (es)", "FF (es)", "LUTRAM (es)",
                   "LUT (bs)", "FF (bs)", "LUTRAM (bs)", "LUT ratio"};
    exp.grid = Grid::cartesian({Axis{
        "es", {0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.98}}});
    exp.prepareSeed = 606;
    exp.prepare = [](const ParamPoint &point, PrepareContext &ctx) {
        auto input = std::make_shared<PairedInput>();
        input->elementSparse = makeElementSparseMatrix(
            64, 64, 8, point.getReal("es"), ctx.rng);
        input->measuredBitSparsity = input->elementSparse.bitSparsity(8);
        input->bitSparse = makeBitSparseMatrix(
            64, 64, 8, input->measuredBitSparsity, ctx.rng);
        return std::shared_ptr<const void>(input);
    };
    exp.evaluate = [](const ParamPoint &, const void *input,
                      EvalContext &ctx) {
        const auto &pair = *static_cast<const PairedInput *>(input);
        const auto &p_es =
            ctx.cache.getFigure(pair.elementSparse,
                                core::SignMode::Unsigned)->point;
        const auto &p_bs =
            ctx.cache.getFigure(pair.bitSparse,
                                core::SignMode::Unsigned)->point;
        const double ratio =
            p_bs.resources.luts == 0
                ? 1.0
                : static_cast<double>(p_es.resources.luts) /
                      static_cast<double>(p_bs.resources.luts);
        return std::vector<Row>{
            {cell(pair.measuredBitSparsity * 100.0, 4),
             cell(p_es.resources.luts), cell(p_es.resources.ffs),
             cell(p_es.resources.lutrams), cell(p_bs.resources.luts),
             cell(p_bs.resources.ffs), cell(p_bs.resources.lutrams),
             cell(ratio, 4)}};
    };
    exp.expectedShape =
        "Expected shape: the (es) and (bs) series coincide (ratio ~ 1) "
        "— bit concentration does not matter.";
    return exp;
}

Experiment
makeFig07()
{
    Experiment exp;
    exp.name = "fig07";
    exp.figure = "Figure 7";
    exp.title = "Figure 7: utilization vs matrix size (random 8-bit)";
    exp.description =
        "hardware utilization vs matrix size, 2x2 through 128x128";
    exp.runtime = "seconds";
    exp.columns = {"size", "elements", "LUT", "FF", "LUT/element"};
    exp.grid = Grid::cartesian({Axis{
        "dim",
        {std::int64_t{2}, std::int64_t{4}, std::int64_t{8},
         std::int64_t{16}, std::int64_t{32}, std::int64_t{64},
         std::int64_t{128}}}});
    exp.prepareSeed = 707;
    exp.prepare = [](const ParamPoint &point, PrepareContext &ctx) {
        const auto dim =
            static_cast<std::size_t>(point.getInt("dim"));
        auto input = std::make_shared<MatrixInput>();
        input->weights =
            makeElementSparseMatrix(dim, dim, 8, 0.0, ctx.rng);
        return std::shared_ptr<const void>(input);
    };
    exp.evaluate = [](const ParamPoint &point, const void *input,
                      EvalContext &ctx) {
        const auto dim =
            static_cast<std::size_t>(point.getInt("dim"));
        const auto &weights =
            static_cast<const MatrixInput *>(input)->weights;
        const auto &p =
            ctx.cache.getFigure(weights, core::SignMode::Unsigned)
                ->point;
        const double per_element =
            static_cast<double>(p.resources.luts) /
            static_cast<double>(dim * dim);
        return std::vector<Row>{
            {cell(std::to_string(dim) + "x" + std::to_string(dim)),
             cell(dim * dim), cell(p.resources.luts),
             cell(p.resources.ffs), cell(per_element, 4)}};
    };
    exp.expectedShape =
        "Expected shape: LUT/element constant (~4 for uniform 8-bit "
        "values) — cost linear in element count.";
    return exp;
}

Experiment
makeFig08()
{
    Experiment exp;
    exp.name = "fig08";
    exp.figure = "Figure 8";
    exp.title = "Figure 8: utilization vs weight bitwidth (64x64)";
    exp.description =
        "hardware utilization vs weight bitwidth 1..32 (64x64)";
    exp.runtime = "seconds";
    exp.columns = {"bitwidth", "ones", "LUT", "FF", "LUT/bit"};
    exp.grid = Grid::cartesian({Axis{
        "bits",
        {std::int64_t{1}, std::int64_t{2}, std::int64_t{4},
         std::int64_t{8}, std::int64_t{16}, std::int64_t{32}}}});
    exp.prepareSeed = 808;
    exp.prepare = [](const ParamPoint &point, PrepareContext &ctx) {
        auto input = std::make_shared<MatrixInput>();
        input->weights = makeElementSparseMatrix(
            64, 64, static_cast<int>(point.getInt("bits")), 0.0,
            ctx.rng);
        return std::shared_ptr<const void>(input);
    };
    exp.evaluate = [](const ParamPoint &point, const void *input,
                      EvalContext &ctx) {
        const int bits = static_cast<int>(point.getInt("bits"));
        const auto &weights =
            static_cast<const MatrixInput *>(input)->weights;
        const auto &p =
            ctx.cache.getFigure(weights, core::SignMode::Unsigned)
                ->point;
        const double per_bit = static_cast<double>(p.resources.luts) /
                               static_cast<double>(bits);
        return std::vector<Row>{
            {cell(bits), cell(weights.onesCount()),
             cell(p.resources.luts), cell(p.resources.ffs),
             cell(per_bit, 4)}};
    };
    exp.expectedShape =
        "Expected shape: LUT and FF linear in bitwidth (constant "
        "LUT/bit).";
    return exp;
}

Experiment
makeFig09()
{
    Experiment exp;
    exp.name = "fig09";
    exp.figure = "Figure 9";
    exp.title = "Figure 9: CSD vs naive (V) utilization "
                "(64x64 element-sparse, 8-bit)";
    exp.description =
        "CSD vs naive binary utilization across element sparsity";
    exp.runtime = "seconds";
    exp.columns = {"element-sparsity %", "LUT (V)", "FF (V)",
                   "LUTRAM (V)", "LUT (CSD)", "FF (CSD)", "LUTRAM (CSD)",
                   "saving %"};
    exp.grid =
        Grid::cartesian({percentAxis({0, 25, 50, 75, 90, 98, 100})});
    exp.prepareSeed = 909;
    exp.prepare = [](const ParamPoint &point, PrepareContext &ctx) {
        auto input = std::make_shared<MatrixInput>();
        input->weights = makeElementSparseMatrix(
            64, 64, 8, static_cast<double>(point.getInt("pct")) / 100.0,
            ctx.rng);
        return std::shared_ptr<const void>(input);
    };
    exp.evaluate = [](const ParamPoint &point, const void *input,
                      EvalContext &ctx) {
        const auto &weights =
            static_cast<const MatrixInput *>(input)->weights;
        const auto &naive =
            ctx.cache.getFigure(weights, core::SignMode::Unsigned)
                ->point;
        const auto &csd =
            ctx.cache.getFigure(weights, core::SignMode::Csd)->point;
        const double saving =
            naive.resources.luts == 0
                ? 0.0
                : 100.0 *
                      (1.0 - static_cast<double>(csd.resources.luts) /
                                 static_cast<double>(
                                     naive.resources.luts));
        return std::vector<Row>{
            {cell(static_cast<int>(point.getInt("pct"))),
             cell(naive.resources.luts), cell(naive.resources.ffs),
             cell(naive.resources.lutrams), cell(csd.resources.luts),
             cell(csd.resources.ffs), cell(csd.resources.lutrams),
             cell(saving, 3)}};
    };
    exp.expectedShape =
        "Expected shape: CSD strictly below V at every sparsity, ~17% "
        "LUT saving for uniform 8-bit data.";
    return exp;
}

Experiment
makeTab1()
{
    Experiment exp;
    exp.name = "tab1";
    exp.figure = "Table I";
    exp.title = "Table I: bit-serial addition of 3 + 7 = 10";
    exp.description =
        "cycle-by-cycle bit-serial adder trace of 3 + 7 = 10";
    exp.runtime = "instant";
    exp.columns = {"Cycle", "Cin", "A", "B", "S", "Cout", "Result"};
    exp.grid = Grid::single({{"example", Value{std::string("3+7")}}});
    exp.evaluate = [](const ParamPoint &, const void *, EvalContext &) {
        using namespace spatial::circuit;

        Netlist netlist;
        const auto a = netlist.addInput(0);
        const auto b = netlist.addInput(1);
        const auto sum = netlist.addAdder(a, b);

        // 3 = 011b, 7 = 111b, streamed LSb first over 4 cycles.
        const int a_bits[4] = {1, 1, 0, 0};
        const int b_bits[4] = {1, 1, 1, 0};

        std::vector<Row> rows;
        Simulator sim(netlist);
        int carry_in = 0;
        std::string result = "0000";
        for (int cycle = 0; cycle < 4; ++cycle) {
            sim.step({static_cast<std::uint8_t>(a_bits[cycle]),
                      static_cast<std::uint8_t>(b_bits[cycle])});
            // The adder registers S and Cout; recompute the
            // combinational view the paper tabulates from the trace.
            const int s = (a_bits[cycle] + b_bits[cycle] + carry_in) & 1;
            const int cout =
                (a_bits[cycle] + b_bits[cycle] + carry_in) >> 1;
            // The result register shifts right; the new sum bit enters
            // on the MSb side, exactly as Table I displays it.
            result = std::string(s ? "1" : "0") + result.substr(0, 3);
            rows.push_back({cell(cycle + 1), cell(carry_in),
                            cell(a_bits[cycle]), cell(b_bits[cycle]),
                            cell(s), cell(cout), cell(result)});
            carry_in = cout;
        }

        // Cross-check against the simulated register contents: the sum
        // bits appear on the adder's output one cycle delayed.
        Simulator check(netlist);
        long long value = 0;
        for (int cycle = 0; cycle < 5; ++cycle) {
            const int ain = cycle < 4 ? a_bits[cycle] : 0;
            const int bin = cycle < 4 ? b_bits[cycle] : 0;
            check.step({static_cast<std::uint8_t>(ain),
                        static_cast<std::uint8_t>(bin)});
            if (cycle >= 1 && check.outputBit(sum))
                value |= 1ll << (cycle - 1);
        }
        if (value != 10)
            SPATIAL_FATAL("tab1: simulated adder output ", value,
                          " != 10");
        return rows;
    };
    exp.expectedShape =
        "simulated adder output: 10 (expected 10) — cross-checked "
        "against the cycle-accurate register trace.";
    return exp;
}

} // namespace

void
registerFigureExperiments(Registry &registry)
{
    registry.add(makeFig05());
    registry.add(makeFig06());
    registry.add(makeFig07());
    registry.add(makeFig08());
    registry.add(makeFig09());
    registry.add(makeTab1());
}

} // namespace spatial::experiments
