/**
 * @file
 * Registry spec for the simulation-engine throughput benchmark: the
 * compiled-tape batch engine against the seed 64-lane interpreter
 * path, one row per SIMD dispatch target supported by the running CPU,
 * every row verified bit-exact before any number is reported.  Mirrors
 * bench/sim_throughput.cc so CI can collect the same trajectory
 * through the spatial-bench JSON artifact.
 */

#include <algorithm>
#include <chrono>
#include <string>

#include "circuit/jit.h"
#include "circuit/kernels.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/batch_engine.h"
#include "experiments/design_cache.h"
#include "experiments/registry.h"
#include "matrix/generate.h"

namespace spatial::experiments
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Best-of-N wall-clock seconds for one batch multiply. */
template <typename F>
double
bestOf(int repeats, F &&run)
{
    double best = 1e300;
    for (int i = 0; i < repeats; ++i) {
        const auto start = Clock::now();
        run();
        best = std::min(best, secondsSince(start));
    }
    return best;
}

Experiment
makeSimThroughput()
{
    Experiment exp;
    exp.name = "sim_throughput";
    exp.figure = "ours (engine perf trajectory)";
    exp.title = "Simulation-engine throughput: compiled tape vs seed "
                "interpreter";
    exp.description = "batch-engine wall-clock speedup over the seed "
                      "path per SIMD kernel, gated and ungated, "
                      "interpreted and JIT-compiled, bit-exact";
    exp.runtime = "~3 min (timing loops; jit=1 rows add admission "
                  "compiles)";
    exp.columns = {"dim", "bits", "batch", "sparsity", "nodes",
                   "drain cycles", "kernel", "lane words", "threads",
                   "gating", "jit", "seg skip %", "legacy ms", "tape ms",
                   "gemv/s", "speedup", "vs scalar"};
    exp.grid = Grid::cartesian(
        {Axis{"dim", {std::int64_t{256}}},
         Axis{"batch", {std::int64_t{1024}}},
         Axis{"bits", {std::int64_t{8}}},
         Axis{"sparsity", {0.9}},
         Axis{"gating", {std::int64_t{1}, std::int64_t{0}}},
         // jit = 1 re-times the gated/ungated configurations through
         // the design's admission-compiled native modules; rows fall
         // back to jit = 0 behaviour (and say so in the jit column)
         // when no C toolchain is reachable.
         Axis{"jit", {std::int64_t{0}, std::int64_t{1}}},
         Axis{"repeats", {std::int64_t{3}}}});
    exp.serialOnly = true; // wall-clock timing; no concurrent neighbours
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &ctx) {
        const auto dim =
            static_cast<std::size_t>(point.getInt("dim"));
        const auto batch_rows =
            static_cast<std::size_t>(point.getInt("batch"));
        const int bits = static_cast<int>(point.getInt("bits"));
        const double sparsity = point.getReal("sparsity");
        const bool gating = point.getInt("gating") != 0;
        const bool jit = point.getInt("jit") != 0;
        const int repeats = static_cast<int>(point.getInt("repeats"));

        Rng rng(99);
        const auto weights = makeSignedElementSparseMatrix(
            dim, dim, bits, sparsity, rng);
        const auto batch = makeSignedBatch(batch_rows, dim, bits, rng);

        core::CompileOptions options;
        options.inputBits = bits;
        options.inputsSigned = true;
        options.signMode = core::SignMode::Csd;
        const auto entry = ctx.cache.get(weights, options);
        const auto &design = *entry->design;

        // Verify bit-exactness before timing anything: scalar
        // reference on the first 64-lane group, then full legacy.
        const std::size_t check =
            std::min<std::size_t>(64, batch_rows);
        IntMatrix head(check, dim);
        for (std::size_t b = 0; b < check; ++b)
            for (std::size_t r = 0; r < dim; ++r)
                head.at(b, r) = batch.at(b, r);
        const auto expected = design.multiplyBatch(head);
        core::SimOptions base_sim = ctx.sim;
        base_sim.activityGating = gating;
        const auto legacy_out = design.multiplyBatchWideLegacy(batch);
        const auto tape_out = design.multiplyBatchWide(batch, base_sim);
        bool exact = legacy_out == tape_out;
        for (std::size_t b = 0; exact && b < expected.rows(); ++b)
            for (std::size_t c = 0; exact && c < expected.cols(); ++c)
                exact = expected.at(b, c) == tape_out.at(b, c);
        if (!exact)
            SPATIAL_FATAL("sim_throughput: engines disagree; refusing "
                          "to report timings");

        const double legacy_s = bestOf(repeats, [&] {
            (void)design.multiplyBatchWideLegacy(batch);
        });

        // One row per dispatch target, timed in ascending vector
        // width: scalar first so the last column can report each
        // vector kernel against it, and AVX-512 last so its lingering
        // license-based downclock stays out of the other kernels'
        // timing windows.
        auto kernels = circuit::kernels::supportedKernels();
        std::sort(kernels.begin(), kernels.end(),
                  [](const auto *a, const auto *b) {
                      return a->vectorWords < b->vectorWords;
                  });
        std::vector<Row> rows;
        double scalar_s = 0.0;
        for (const auto *kernel : kernels) {
            core::SimOptions sim = base_sim;
            sim.kernel = kernel;
            // Single-threaded unless --threads was given, mirroring
            // the bench: the vs-scalar column should measure kernel
            // code, not how the group scheduler shares the machine.
            if (sim.threads == 0)
                sim.threads = 1;
            bool jit_ran = false;
            if (jit) {
                // Admission compiles are seconds-to-minutes per
                // (W, gating) pair, so jit rows cover only the
                // process-dispatched kernel — the configuration the
                // serving path actually runs — and report whether the
                // module really executed (0 = interpreter fallback,
                // e.g. no C toolchain on the host).
                if (kernel != &circuit::kernels::activeKernel())
                    continue;
                sim.jit = true;
                const unsigned w =
                    core::resolvedLaneWords(design, sim, batch_rows);
                jit_ran = design.ensureJit(sim, w) != nullptr;
            }
            core::BatchStats seg_stats;
            if (!(legacy_out ==
                  core::runBatchWide(design, batch, sim, &seg_stats)))
                SPATIAL_FATAL("sim_throughput: kernel ", kernel->name,
                              " disagrees with the seed path");
            if (jit)
                jit_ran = jit_ran && seg_stats.jitGroups > 0;
            const double seg_total = static_cast<double>(
                seg_stats.segmentsExecuted + seg_stats.segmentsSkipped);
            const double skip_pct =
                seg_total > 0.0
                    ? 100.0 *
                          static_cast<double>(seg_stats.segmentsSkipped) /
                          seg_total
                    : 0.0;
            const double tape_s = bestOf(repeats, [&] {
                (void)design.multiplyBatchWide(batch, sim);
            });
            if (std::string("scalar") == kernel->name)
                scalar_s = tape_s;
            const unsigned lane_words =
                core::resolvedLaneWords(design, sim, batch_rows);
            rows.push_back(
                {cell(dim), cell(bits), cell(batch_rows),
                 cell(sparsity, 3), cell(design.netlist().numNodes()),
                 cell(std::uint64_t{design.drainCycles()}),
                 cell(std::string(kernel->name)),
                 cell(static_cast<int>(lane_words)),
                 cell(static_cast<int>(sim.threads)),
                 cell(static_cast<int>(gating ? 1 : 0)),
                 cell(static_cast<int>(jit_ran ? 1 : 0)),
                 cell(skip_pct, 3), cell(legacy_s * 1e3, 4),
                 cell(tape_s * 1e3, 4),
                 cell(static_cast<double>(batch_rows) / tape_s, 1),
                 cell(legacy_s / tape_s, 3),
                 cell(scalar_s > 0.0 ? scalar_s / tape_s : 0.0, 3)});
        }
        return rows;
    };
    exp.expectedShape =
        "Speedup is the wall-clock ratio of the seed interpreter to "
        "the compiled-tape engine on identical (bit-exact) work, one "
        "row per (SIMD kernel, activity gating) pair plus one jit = 1 "
        "row per gating mode on the dispatched kernel; the preferred "
        "vector kernel should lead, gated rows should skip over half "
        "of all segment-cycles on this drain-heavy workload, jit rows "
        "should beat their interpreted twins (jit = 0 means the host "
        "had no toolchain and the row fell back), and multi-core "
        "machines add near-linear thread scaling.";
    return exp;
}

} // namespace

void
registerPerfExperiments(Registry &registry)
{
    registry.add(makeSimThroughput());
}

} // namespace spatial::experiments
