#include "experiments/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace spatial::experiments
{

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
jsonReal(double v)
{
    // JSON has no NaN/Inf literal; null is the conventional stand-in.
    if (!std::isfinite(v))
        return "null";
    // max_digits10 guarantees the shortest-read-back-exact property a
    // round-trip test depends on.
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

bool
JsonValue::boolean() const
{
    SPATIAL_ASSERT(kind_ == Kind::Boolean, "not a boolean");
    return bool_;
}

double
JsonValue::number() const
{
    SPATIAL_ASSERT(kind_ == Kind::Number, "not a number");
    return number_;
}

const std::string &
JsonValue::string() const
{
    SPATIAL_ASSERT(kind_ == Kind::String, "not a string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::array() const
{
    SPATIAL_ASSERT(kind_ == Kind::Array, "not an array");
    return array_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    SPATIAL_ASSERT(kind_ == Kind::Object, "not an object");
    const auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const auto *v = find(key);
    if (v == nullptr)
        SPATIAL_FATAL("JSON object has no member '", key, "'");
    return *v;
}

struct JsonValue::Parser
{
    std::string_view text;
    std::size_t pos = 0;
    bool failed = false;

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) == word) {
            pos += word.size();
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipSpace();
        JsonValue v;
        if (failed || pos >= text.size()) {
            failed = true;
            return v;
        }
        const char c = text[pos];
        if (c == 'n' && literal("null"))
            return v;
        if (c == 't' && literal("true")) {
            v.kind_ = Kind::Boolean;
            v.bool_ = true;
            return v;
        }
        if (c == 'f' && literal("false")) {
            v.kind_ = Kind::Boolean;
            v.bool_ = false;
            return v;
        }
        if (c == '"')
            return parseString();
        if (c == '[')
            return parseArray();
        if (c == '{')
            return parseObject();
        return parseNumber();
    }

    JsonValue
    parseString()
    {
        JsonValue v;
        v.kind_ = Kind::String;
        ++pos; // opening quote
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\') {
                if (pos >= text.size()) {
                    failed = true;
                    return v;
                }
                const char esc = text[pos++];
                switch (esc) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'n': c = '\n'; break;
                  case 'r': c = '\r'; break;
                  case 't': c = '\t'; break;
                  case 'u': {
                    if (pos + 4 > text.size()) {
                        failed = true;
                        return v;
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text[pos++];
                        if (!std::isxdigit(
                                static_cast<unsigned char>(h))) {
                            failed = true;
                            return v;
                        }
                        code = code * 16 +
                               static_cast<unsigned>(
                                   h <= '9'   ? h - '0'
                                   : h <= 'F' ? h - 'A' + 10
                                              : h - 'a' + 10);
                    }
                    // BMP code points as UTF-8; surrogates rejected
                    // (pair decoding is beyond this parser's remit).
                    if (code >= 0xd800 && code <= 0xdfff) {
                        failed = true;
                        return v;
                    }
                    if (code < 0x80) {
                        v.string_.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        v.string_.push_back(
                            static_cast<char>(0xc0 | (code >> 6)));
                        v.string_.push_back(
                            static_cast<char>(0x80 | (code & 0x3f)));
                    } else {
                        v.string_.push_back(
                            static_cast<char>(0xe0 | (code >> 12)));
                        v.string_.push_back(static_cast<char>(
                            0x80 | ((code >> 6) & 0x3f)));
                        v.string_.push_back(
                            static_cast<char>(0x80 | (code & 0x3f)));
                    }
                    continue;
                  }
                  default: failed = true; return v;
                }
            }
            v.string_.push_back(c);
        }
        if (pos >= text.size()) {
            failed = true;
            return v;
        }
        ++pos; // closing quote
        return v;
    }

    JsonValue
    parseNumber()
    {
        JsonValue v;
        const char *start = text.data() + pos;
        char *end = nullptr;
        v.number_ = std::strtod(start, &end);
        if (end == start) {
            failed = true;
            return v;
        }
        v.kind_ = Kind::Number;
        pos += static_cast<std::size_t>(end - start);
        return v;
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.kind_ = Kind::Array;
        ++pos; // '['
        if (consume(']'))
            return v;
        do {
            v.array_.push_back(parseValue());
            if (failed)
                return v;
        } while (consume(','));
        if (!consume(']'))
            failed = true;
        return v;
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.kind_ = Kind::Object;
        ++pos; // '{'
        if (consume('}'))
            return v;
        do {
            skipSpace();
            if (pos >= text.size() || text[pos] != '"') {
                failed = true;
                return v;
            }
            JsonValue key = parseString();
            if (failed || !consume(':')) {
                failed = true;
                return v;
            }
            v.object_.emplace(key.string_, parseValue());
            if (failed)
                return v;
        } while (consume(','));
        if (!consume('}'))
            failed = true;
        return v;
    }
};

std::optional<JsonValue>
JsonValue::parse(std::string_view text)
{
    Parser parser{text};
    JsonValue v = parser.parseValue();
    parser.skipSpace();
    if (parser.failed || parser.pos != text.size())
        return std::nullopt;
    return v;
}

} // namespace spatial::experiments
