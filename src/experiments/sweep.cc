#include "experiments/sweep.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/logging.h"
#include "experiments/json.h"

namespace spatial::experiments
{

namespace
{

std::string
valueJson(const Value &v)
{
    if (const auto *i = std::get_if<std::int64_t>(&v))
        return std::to_string(*i);
    if (const auto *d = std::get_if<double>(&v))
        return jsonReal(*d);
    return jsonQuote(std::get<std::string>(v));
}

} // namespace

Table
ExperimentResult::toTable() const
{
    Table table(title, columns);
    for (const auto &row : rows) {
        std::vector<std::string> cells;
        cells.reserve(row.size());
        for (const auto &c : row)
            cells.push_back(c.text);
        table.addRow(std::move(cells));
    }
    return table;
}

std::string
ExperimentResult::toJson() const
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"spatial-bench/v1\",\n";
    out << "  \"experiment\": " << jsonQuote(name) << ",\n";
    out << "  \"figure\": " << jsonQuote(figure) << ",\n";
    out << "  \"title\": " << jsonQuote(title) << ",\n";
    out << "  \"columns\": [";
    for (std::size_t i = 0; i < columns.size(); ++i)
        out << (i ? ", " : "") << jsonQuote(columns[i]);
    out << "],\n";
    out << "  \"points\": " << points.size() << ",\n";
    out << "  \"rows\": [";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        out << (r ? ",\n    " : "\n    ") << "[";
        for (std::size_t c = 0; c < rows[r].size(); ++c)
            out << (c ? ", " : "") << valueJson(rows[r][c].value);
        out << "]";
    }
    out << (rows.empty() ? "" : "\n  ") << "],\n";
    out << "  \"cache\": {\"design_hits\": " << cacheDelta.hits
        << ", \"design_misses\": " << cacheDelta.misses << "},\n";
    out << "  \"wall_seconds\": " << jsonReal(wallSeconds) << ",\n";
    out << "  \"note\": " << jsonQuote(note) << "\n";
    out << "}\n";
    return out.str();
}

void
ExperimentResult::writeCsv(std::ostream &os) const
{
    toTable().printCsv(os);
}

bool
parseResultJson(const std::string &text,
                std::vector<std::string> &columns,
                std::vector<std::vector<Value>> &rows)
{
    const auto doc = JsonValue::parse(text);
    if (!doc || doc->kind() != JsonValue::Kind::Object)
        return false;
    const auto *schema = doc->find("schema");
    if (schema == nullptr ||
        schema->kind() != JsonValue::Kind::String ||
        schema->string() != "spatial-bench/v1")
        return false;
    const auto *cols = doc->find("columns");
    const auto *rowsNode = doc->find("rows");
    if (cols == nullptr || cols->kind() != JsonValue::Kind::Array ||
        rowsNode == nullptr ||
        rowsNode->kind() != JsonValue::Kind::Array)
        return false;

    columns.clear();
    for (const auto &c : cols->array()) {
        if (c.kind() != JsonValue::Kind::String)
            return false;
        columns.push_back(c.string());
    }
    rows.clear();
    for (const auto &row : rowsNode->array()) {
        if (row.kind() != JsonValue::Kind::Array ||
            row.array().size() != columns.size())
            return false;
        std::vector<Value> cells;
        for (const auto &c : row.array()) {
            switch (c.kind()) {
              case JsonValue::Kind::Number:
                cells.emplace_back(c.number());
                break;
              case JsonValue::Kind::String:
                cells.emplace_back(c.string());
                break;
              case JsonValue::Kind::Null:
                // The writer emits null for non-finite reals.
                cells.emplace_back(std::nan(""));
                break;
              default:
                return false;
            }
        }
        rows.push_back(std::move(cells));
    }
    return true;
}

SweepEngine::SweepEngine(SweepOptions options) : options_(options) {}

ExperimentResult
SweepEngine::run(const Experiment &experiment,
                 const std::vector<GridOverride> &overrides)
{
    SPATIAL_ASSERT(experiment.evaluate != nullptr, "experiment '",
                   experiment.name, "' has no evaluate stage");
    const auto start = std::chrono::steady_clock::now();
    const auto statsBefore = cache_.stats();

    Grid grid = experiment.grid;
    for (const auto &override_ : overrides) {
        const std::string error =
            grid.applyOverride(override_.name, override_.values);
        if (!error.empty())
            SPATIAL_FATAL("experiment '", experiment.name, "': ", error);
    }

    ExperimentResult result;
    result.name = experiment.name;
    result.figure = experiment.figure;
    result.title = experiment.title;
    result.columns = experiment.columns;
    result.points = grid.expand();

    // Serial prepare stage, in grid order, on one Rng stream.  A
    // --seed override perturbs each experiment's own seed (rather
    // than replacing it) so distinct experiments keep distinct
    // streams under one flag value.
    std::vector<std::shared_ptr<const void>> inputs(result.points.size());
    if (experiment.prepare) {
        Rng rng(mixSeed(experiment.prepareSeed, options_.seed));
        PrepareContext ctx{rng};
        for (std::size_t i = 0; i < result.points.size(); ++i)
            inputs[i] = experiment.prepare(result.points[i], ctx);
    }

    // Parallel evaluate stage.
    unsigned threads = options_.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    if (experiment.serialOnly)
        threads = 1;
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, result.points.size()));

    std::vector<std::vector<Row>> pointRows(result.points.size());
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr failure;
    std::mutex failureMutex;

    auto worker = [&] {
        EvalContext ctx{cache_, options_.sim, options_.seed};
        for (;;) {
            // Stop claiming points once any worker has failed, so a
            // first-point error is not hidden behind the full sweep.
            if (failed.load(std::memory_order_relaxed))
                return;
            const std::size_t i = next.fetch_add(1);
            if (i >= result.points.size())
                return;
            try {
                pointRows[i] = experiment.evaluate(
                    result.points[i], inputs[i].get(), ctx);
            } catch (...) {
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(failureMutex);
                if (!failure)
                    failure = std::current_exception();
                return;
            }
        }
    };

    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (auto &thread : pool)
            thread.join();
    }
    if (failure)
        std::rethrow_exception(failure);

    for (auto &rows : pointRows)
        for (auto &row : rows) {
            SPATIAL_ASSERT(row.size() == result.columns.size(),
                           "experiment '", experiment.name,
                           "' row width ", row.size(), " vs ",
                           result.columns.size(), " columns");
            result.rows.push_back(std::move(row));
        }

    result.note = experiment.note ? experiment.note(result.rows)
                                  : experiment.expectedShape;
    result.cacheDelta = cache_.stats() - statsBefore;
    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return result;
}

} // namespace spatial::experiments
