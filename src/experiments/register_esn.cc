/**
 * @file
 * Registry specs for the Echo State Network scenarios: NARMA-10,
 * Mackey-Glass prediction, linear memory capacity, and nonlinear
 * channel equalization — each running the quantized reservoir on the
 * cycle-accurate simulated hardware and comparing against the float
 * reference, as the example binaries do.
 */

#include <cmath>

#include "common/logging.h"
#include "esn/capacity.h"
#include "esn/esn.h"
#include "esn/metrics.h"
#include "esn/tasks.h"
#include "experiments/registry.h"

namespace spatial::experiments
{

namespace
{

using esn::BackendKind;
using esn::EchoStateNetwork;
using esn::IntEchoStateNetwork;
using esn::IntReservoirConfig;
using esn::ReservoirConfig;
using esn::TaskData;

Axis
singleInt(std::string name, std::int64_t value)
{
    return Axis{std::move(name), {Value{value}}};
}

/** The examples' 4-bit-weight / 8-bit-state quantization. */
IntReservoirConfig
quantConfig()
{
    IntReservoirConfig config;
    config.weightBits = 4;
    config.stateBits = 8;
    return config;
}

/** Prepared train/test sequences for the NARMA scenario. */
struct NarmaInput
{
    TaskData train;
    TaskData test;
};

Experiment
makeEsnNarma()
{
    Experiment exp;
    exp.name = "esn_narma";
    exp.figure = "ESN scenario (paper Section II workload)";
    exp.title = "NARMA-10: test NRMSE by reservoir backend";
    exp.description =
        "ESN on NARMA-10: float vs int software vs simulated hardware";
    exp.runtime = "~1 min (cycle-accurate reservoir updates)";
    exp.columns = {"backend", "test NRMSE"};
    exp.grid = Grid::cartesian({singleInt("dim", 64),
                                singleInt("train", 800),
                                singleInt("test", 500)});
    exp.prepareSeed = 2024;
    exp.prepare = [](const ParamPoint &point, PrepareContext &ctx) {
        auto input = std::make_shared<NarmaInput>();
        input->train = esn::makeNarma10(
            static_cast<std::size_t>(point.getInt("train")), ctx.rng);
        input->test = esn::makeNarma10(
            static_cast<std::size_t>(point.getInt("test")), ctx.rng);
        return std::shared_ptr<const void>(input);
    };
    exp.evaluate = [](const ParamPoint &point, const void *inputPtr,
                      EvalContext &) {
        const auto &data = *static_cast<const NarmaInput *>(inputPtr);
        const std::size_t washout = 60;

        ReservoirConfig config;
        config.dim = static_cast<std::size_t>(point.getInt("dim"));
        config.sparsity = 0.9; // >80% per Gallicchio (citation [10])
        config.spectralRadius = 0.9;
        config.seed = 7;
        const auto weights = esn::makeReservoirWeights(config);

        auto evaluateNrmse = [&](std::vector<double> preds) {
            std::vector<double> p(preds.begin() +
                                      static_cast<std::ptrdiff_t>(washout),
                                  preds.end());
            std::vector<double> t(data.test.targets.begin() +
                                      static_cast<std::ptrdiff_t>(washout),
                                  data.test.targets.end());
            return esn::nrmse(p, t);
        };

        EchoStateNetwork float_esn(weights, config);
        float_esn.train(data.train.inputs, data.train.targets, washout,
                        1e-6);
        const double float_err =
            evaluateNrmse(float_esn.predict(data.test.inputs));

        IntEchoStateNetwork int_esn(weights, quantConfig(),
                                    BackendKind::Reference);
        int_esn.train(data.train.inputs, data.train.targets, washout,
                      1e-4);
        const double int_err =
            evaluateNrmse(int_esn.predict(data.test.inputs));

        IntEchoStateNetwork hw_esn(weights, quantConfig(),
                                   BackendKind::Spatial);
        hw_esn.train(data.train.inputs, data.train.targets, washout,
                     1e-4);
        const double hw_err =
            evaluateNrmse(hw_esn.predict(data.test.inputs));

        // The hardware path must match the software integer path
        // exactly; anything else is a simulation-engine bug.
        if (std::abs(hw_err - int_err) > 1e-9)
            SPATIAL_FATAL("esn_narma: hardware NRMSE ", hw_err,
                          " != software integer NRMSE ", int_err);

        return std::vector<Row>{
            {cell("float"), cell(float_err, 4)},
            {cell("int8/4-bit software"), cell(int_err, 4)},
            {cell("int8/4-bit hardware"), cell(hw_err, 4)}};
    };
    exp.expectedShape =
        "Quantization costs some accuracy vs float; the hardware row "
        "is enforced bit-exact with the software integer row.";
    return exp;
}

Experiment
makeEsnMackeyGlass()
{
    Experiment exp;
    exp.name = "esn_mackey_glass";
    exp.figure = "ESN scenario (chaotic prediction)";
    exp.title = "Mackey-Glass prediction NRMSE vs horizon (dim 80)";
    exp.description =
        "ESN forecasting the Mackey-Glass series on simulated hardware";
    exp.runtime = "~2 min per horizon point";
    exp.columns = {"horizon", "NRMSE float", "NRMSE hardware"};
    exp.grid = Grid::cartesian(
        {Axis{"horizon",
              {std::int64_t{1}, std::int64_t{4}, std::int64_t{8},
               std::int64_t{16}}},
         singleInt("dim", 80), singleInt("train", 1500),
         singleInt("test", 800)});
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &) {
        const auto horizon =
            static_cast<std::size_t>(point.getInt("horizon"));
        const auto train_len =
            static_cast<std::size_t>(point.getInt("train"));
        const auto test_len =
            static_cast<std::size_t>(point.getInt("test"));
        const std::size_t washout = 100;

        ReservoirConfig config;
        config.dim = static_cast<std::size_t>(point.getInt("dim"));
        config.sparsity = 0.9;
        config.spectralRadius = 0.95; // chaotic series reward memory
        config.inputScale = 0.4;
        config.seed = 23;
        const auto weights = esn::makeReservoirWeights(config);

        const auto series =
            esn::makeMackeyGlass(train_len + test_len, horizon);
        const auto split = static_cast<std::ptrdiff_t>(train_len);
        std::vector<double> train_u(series.inputs.begin(),
                                    series.inputs.begin() + split);
        std::vector<double> train_y(series.targets.begin(),
                                    series.targets.begin() + split);
        std::vector<double> test_u(series.inputs.begin() + split,
                                   series.inputs.end());
        std::vector<double> test_y(series.targets.begin() + split,
                                   series.targets.end());

        auto score = [&](std::vector<double> preds) {
            std::vector<double> p(preds.begin() +
                                      static_cast<std::ptrdiff_t>(washout),
                                  preds.end());
            std::vector<double> t(test_y.begin() +
                                      static_cast<std::ptrdiff_t>(washout),
                                  test_y.end());
            return esn::nrmse(p, t);
        };

        EchoStateNetwork float_esn(weights, config);
        float_esn.train(train_u, train_y, washout, 1e-7);
        const double float_err = score(float_esn.predict(test_u));

        IntEchoStateNetwork hw_esn(weights, quantConfig(),
                                   BackendKind::Spatial);
        hw_esn.train(train_u, train_y, washout, 1e-4);
        const double hw_err = score(hw_esn.predict(test_u));

        return std::vector<Row>{{cell(static_cast<int>(horizon)),
                                 cell(float_err, 4),
                                 cell(hw_err, 4)}};
    };
    exp.expectedShape =
        "Error grows with horizon (chaos); the hardware reservoir "
        "tracks the float reference.";
    return exp;
}

Experiment
makeEsnMemoryCapacity()
{
    Experiment exp;
    exp.name = "esn_memory_capacity";
    exp.figure = "ESN scenario (memory-capacity probe)";
    exp.title = "Linear memory capacity (max delay 30)";
    exp.description =
        "reservoir memory capacity: float vs hardware-backed integer";
    exp.runtime = "~2 min per (dim, sparsity) point";
    exp.columns = {"dim", "sparsity", "MC float",
                   "MC hardware (int8/4b)"};
    exp.grid = Grid::cartesian(
        {Axis{"dim", {std::int64_t{32}, std::int64_t{64}}},
         Axis{"sparsity", {0.5, 0.9}}, singleInt("length", 1200),
         singleInt("delay", 30)});
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &) {
        const auto dim = static_cast<std::size_t>(point.getInt("dim"));
        const double sparsity = point.getReal("sparsity");
        const auto length =
            static_cast<std::size_t>(point.getInt("length"));
        const auto max_delay =
            static_cast<std::size_t>(point.getInt("delay"));
        const std::size_t washout = max_delay + 20;

        ReservoirConfig config;
        config.dim = dim;
        config.sparsity = sparsity;
        config.spectralRadius = 0.9;
        config.inputScale = 0.25;
        config.seed = 17 + dim;
        const auto weights = esn::makeReservoirWeights(config);

        esn::FloatReservoir float_res(weights, config);
        Rng probe_a(55);
        const auto mc_float = esn::measureMemoryCapacity(
            float_res, max_delay, length, washout, 1e-7, probe_a);

        auto hw_res = esn::makeIntReservoir(weights, quantConfig(),
                                            BackendKind::Spatial);
        Rng probe_b(55);
        const auto mc_hw = esn::measureMemoryCapacity(
            hw_res, max_delay, length, washout, 1e-4, probe_b);

        return std::vector<Row>{{cell(dim), cell(sparsity, 3),
                                 cell(mc_float.total, 4),
                                 cell(mc_hw.total, 4)}};
    };
    exp.expectedShape =
        "MC is bounded by the reservoir dimension; quantization trades "
        "some capacity for the integer datapath the spatial multiplier "
        "implements.";
    return exp;
}

Experiment
makeEsnChannelEq()
{
    Experiment exp;
    exp.name = "esn_channel_eq";
    exp.figure = "ESN scenario (citation [3] use case)";
    exp.title = "Channel equalization: symbol error rate vs SNR";
    exp.description =
        "4-PAM channel equalization: float vs hardware symbol error";
    exp.runtime = "~2 min per SNR point";
    exp.columns = {"SNR (dB)", "SER float", "SER hardware"};
    exp.grid = Grid::cartesian(
        {Axis{"snr", {12.0, 16.0, 20.0, 24.0, 28.0}},
         singleInt("dim", 64), singleInt("train", 1500),
         singleInt("test", 1000)});
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &) {
        const double snr = point.getReal("snr");
        const auto train_len =
            static_cast<std::size_t>(point.getInt("train"));
        const auto test_len =
            static_cast<std::size_t>(point.getInt("test"));
        const std::size_t washout = 50;

        ReservoirConfig config;
        config.dim = static_cast<std::size_t>(point.getInt("dim"));
        config.sparsity = 0.9;
        config.spectralRadius = 0.7; // equalization needs short memory
        config.inputScale = 0.3;
        config.seed = 11;
        const auto weights = esn::makeReservoirWeights(config);

        Rng rng(100 + static_cast<std::uint64_t>(snr));
        const auto train_data =
            esn::makeChannelEqualization(train_len, snr, rng);
        const auto test_data =
            esn::makeChannelEqualization(test_len, snr, rng);

        auto ser_of = [&](std::vector<double> preds) {
            std::vector<double> p(preds.begin() +
                                      static_cast<std::ptrdiff_t>(washout),
                                  preds.end());
            std::vector<double> t(test_data.targets.begin() +
                                      static_cast<std::ptrdiff_t>(washout),
                                  test_data.targets.end());
            return esn::symbolErrorRate(p, t, esn::kChannelSymbols);
        };

        EchoStateNetwork float_esn(weights, config);
        float_esn.train(train_data.inputs, train_data.targets, washout,
                        1e-6);
        const double float_ser =
            ser_of(float_esn.predict(test_data.inputs));

        IntEchoStateNetwork hw_esn(weights, quantConfig(),
                                   BackendKind::Spatial);
        hw_esn.train(train_data.inputs, train_data.targets, washout,
                     1e-4);
        const double hw_ser =
            ser_of(hw_esn.predict(test_data.inputs));

        return std::vector<Row>{{cell(snr, 3), cell(float_ser, 4),
                                 cell(hw_ser, 4)}};
    };
    exp.expectedShape =
        "higher SNR -> lower SER; the quantized hardware reservoir "
        "tracks the float reference.";
    return exp;
}

} // namespace

void
registerEsnExperiments(Registry &registry)
{
    registry.add(makeEsnNarma());
    registry.add(makeEsnMackeyGlass());
    registry.add(makeEsnMemoryCapacity());
    registry.add(makeEsnChannelEq());
}

} // namespace spatial::experiments
