#include "experiments/workload.h"

#include "common/rng.h"
#include "matrix/generate.h"

namespace spatial::experiments
{

Workload
makeWorkload(std::size_t dim, double sparsity, std::uint64_t seed)
{
    Rng rng(seed + dim * 31 +
            static_cast<std::uint64_t>(sparsity * 1000.0));
    Workload workload;
    workload.weights =
        makeSignedElementSparseMatrix(dim, dim, 8, sparsity, rng);
    workload.csr = CsrMatrix<std::int64_t>::fromDense(workload.weights);
    return workload;
}

} // namespace spatial::experiments
