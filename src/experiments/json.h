/**
 * @file
 * Minimal JSON support for the experiment subsystem: string escaping
 * and number formatting for the sweep engine's result writer, and a
 * small recursive-descent parser so tests (and downstream tools) can
 * round-trip what the writer emits.  Deliberately tiny — objects,
 * arrays, strings, numbers, booleans, and null; no comments, no
 * streaming.
 */

#ifndef SPATIAL_EXPERIMENTS_JSON_H
#define SPATIAL_EXPERIMENTS_JSON_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace spatial::experiments
{

/** Quote and escape a string as a JSON string literal. */
std::string jsonQuote(const std::string &s);

/** Format a real so it round-trips bit-exactly through the parser. */
std::string jsonReal(double v);

/** A parsed JSON document node. */
class JsonValue
{
  public:
    /** The JSON type of this node. */
    enum class Kind
    {
        Null,    //!< null
        Boolean, //!< true / false
        Number,  //!< double-precision number
        String,  //!< string
        Array,   //!< ordered list
        Object,  //!< key/value map
    };

    /** Construct a null node. */
    JsonValue() = default;

    /**
     * Parse a complete JSON document; returns nullopt on any syntax
     * error or trailing garbage.
     */
    static std::optional<JsonValue> parse(std::string_view text);

    /** This node's type. */
    Kind kind() const { return kind_; }

    /** Boolean payload (requires Kind::Boolean). */
    bool boolean() const;
    /** Numeric payload (requires Kind::Number). */
    double number() const;
    /** String payload (requires Kind::String). */
    const std::string &string() const;
    /** Array elements (requires Kind::Array). */
    const std::vector<JsonValue> &array() const;

    /** Object member, or nullptr when absent (requires Kind::Object). */
    const JsonValue *find(const std::string &key) const;

    /** Object member; fatal when absent. */
    const JsonValue &at(const std::string &key) const;

  private:
    struct Parser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
};

} // namespace spatial::experiments

#endif // SPATIAL_EXPERIMENTS_JSON_H
