/**
 * @file
 * Registry specs for the baseline-comparison figures: FPGA vs the
 * modelled V100 libraries (Figures 13-18) and vs the SIGMA-style
 * accelerator (Figures 19-23).  Latency and speedup sides of each
 * sweep share workloads, so running them together hits the design
 * cache instead of recompiling.
 */

#include "baselines/gpu_model.h"
#include "baselines/sigma.h"
#include "experiments/design_cache.h"
#include "experiments/registry.h"
#include "experiments/workload.h"
#include "matrix/generate.h"

namespace spatial::experiments
{

namespace
{

Axis
intAxis(std::string name, std::vector<std::int64_t> values)
{
    std::vector<Value> out;
    for (const auto v : values)
        out.emplace_back(v);
    return Axis{std::move(name), std::move(out)};
}

/** The 98%-sparse dimension sweep of Figures 13/14 and 19/20. */
const std::vector<std::int64_t> kDimSweep = {64,   128,  256, 512,
                                             1024, 2048, 4096};

/** Prepared input vector for the SIGMA figures. */
struct VectorInput
{
    std::vector<std::int64_t> v;
};

/** Prepared input batch for Figure 23. */
struct BatchInput
{
    IntMatrix m;
};

Experiment
makeFig13()
{
    Experiment exp;
    exp.name = "fig13";
    exp.figure = "Figure 13";
    exp.title = "Figure 13: latency vs dimension (98% sparse)";
    exp.description = "FPGA vs V100 libraries: latency across dimension";
    exp.runtime = "~1 min (the 4096 compile dominates)";
    exp.columns = {"dim", "nnz", "cuSPARSE ns", "OptKernel ns",
                   "FPGA ns", "FPGA Fmax MHz"};
    exp.grid = Grid::cartesian({intAxis("dim", kDimSweep)});
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &ctx) {
        using baselines::GpuLibrary;
        using baselines::GpuModel;
        const GpuModel cusparse(GpuLibrary::CuSparse);
        const GpuModel optimized(GpuLibrary::OptimizedKernel);
        const auto dim =
            static_cast<std::size_t>(point.getInt("dim"));
        const auto workload = makeWorkload(dim, 0.98);
        const auto nnz = workload.csr.nnz();
        const auto &p = ctx.cache.getFigure(workload.weights)->point;
        return std::vector<Row>{
            {cell(dim), cell(nnz),
             cell(cusparse.latencyNs(dim, dim, nnz), 5),
             cell(optimized.latencyNs(dim, dim, nnz), 5),
             cell(p.latencyNs, 5), cell(p.fmaxMhz, 4)}};
    };
    exp.expectedShape =
        "Expected shape: FPGA < 150 ns everywhere; both GPU libraries "
        "above 1 us, flat below 512 (latency-bound) then growing with "
        "nnz.";
    return exp;
}

Experiment
makeFig14()
{
    Experiment exp;
    exp.name = "fig14";
    exp.figure = "Figure 14";
    exp.title = "Figure 14: speedup vs dimension (98% sparse)";
    exp.description = "FPGA speedup over the V100 across dimension";
    exp.runtime = "~1 min (shares designs with fig13)";
    exp.columns = {"dim", "speedup vs cuSPARSE", "speedup vs OptKernel"};
    exp.grid = Grid::cartesian({intAxis("dim", kDimSweep)});
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &ctx) {
        using baselines::GpuLibrary;
        using baselines::GpuModel;
        const GpuModel cusparse(GpuLibrary::CuSparse);
        const GpuModel optimized(GpuLibrary::OptimizedKernel);
        const auto dim =
            static_cast<std::size_t>(point.getInt("dim"));
        const auto workload = makeWorkload(dim, 0.98);
        const auto nnz = workload.csr.nnz();
        const auto &p = ctx.cache.getFigure(workload.weights)->point;
        return std::vector<Row>{
            {cell(dim),
             cell(cusparse.latencyNs(dim, dim, nnz) / p.latencyNs, 4),
             cell(optimized.latencyNs(dim, dim, nnz) / p.latencyNs,
                  4)}};
    };
    exp.expectedShape =
        "Expected shape: optimized-kernel speedup ~86x at small dims "
        "decaying to ~50x at 4096; cuSPARSE several times higher.";
    return exp;
}

Experiment
makeFig15()
{
    Experiment exp;
    exp.name = "fig15";
    exp.figure = "Figure 15";
    exp.title = "Figure 15: latency vs sparsity (1024x1024)";
    exp.description = "FPGA vs V100 latency across element sparsity";
    exp.runtime = "~1 min";
    exp.columns = {"sparsity %", "nnz", "cuSPARSE ns", "OptKernel ns",
                   "FPGA ns", "FPGA Fmax MHz"};
    exp.grid = Grid::cartesian({Axis{
        "sparsity", {0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 0.98}}});
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &ctx) {
        using baselines::GpuLibrary;
        using baselines::GpuModel;
        const GpuModel cusparse(GpuLibrary::CuSparse);
        const GpuModel optimized(GpuLibrary::OptimizedKernel);
        const std::size_t dim = 1024;
        const double sparsity = point.getReal("sparsity");
        const auto workload = makeWorkload(dim, sparsity);
        const auto nnz = workload.csr.nnz();
        const auto &p = ctx.cache.getFigure(workload.weights)->point;
        return std::vector<Row>{
            {cell(sparsity * 100.0, 3), cell(nnz),
             cell(cusparse.latencyNs(dim, dim, nnz), 5),
             cell(optimized.latencyNs(dim, dim, nnz), 5),
             cell(p.latencyNs, 5), cell(p.fmaxMhz, 4)}};
    };
    exp.expectedShape =
        "Expected shape: cuSPARSE drops sharply 70->85% then levels "
        "off; FPGA stays well under 1 us at every point.";
    return exp;
}

Experiment
makeFig16()
{
    Experiment exp;
    exp.name = "fig16";
    exp.figure = "Figure 16";
    exp.title = "Figure 16: speedup vs sparsity (1024x1024)";
    exp.description = "FPGA speedup over the V100 across sparsity";
    exp.runtime = "~1 min (shares designs with fig15)";
    exp.columns = {"sparsity %", "speedup vs cuSPARSE",
                   "speedup vs OptKernel"};
    exp.grid = Grid::cartesian({Axis{
        "sparsity", {0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 0.98}}});
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &ctx) {
        using baselines::GpuLibrary;
        using baselines::GpuModel;
        const GpuModel cusparse(GpuLibrary::CuSparse);
        const GpuModel optimized(GpuLibrary::OptimizedKernel);
        const std::size_t dim = 1024;
        const double sparsity = point.getReal("sparsity");
        const auto workload = makeWorkload(dim, sparsity);
        const auto nnz = workload.csr.nnz();
        const auto &p = ctx.cache.getFigure(workload.weights)->point;
        return std::vector<Row>{
            {cell(sparsity * 100.0, 3),
             cell(cusparse.latencyNs(dim, dim, nnz) / p.latencyNs, 4),
             cell(optimized.latencyNs(dim, dim, nnz) / p.latencyNs,
                  4)}};
    };
    exp.expectedShape =
        "Expected shape: optimized-kernel speedup highest at 70% "
        "(~77x), easing toward ~60x at 98%; cuSPARSE several times "
        "higher throughout.";
    return exp;
}

Experiment
makeGpuBatch(std::string name, std::string figure, std::size_t dim,
             std::string title, std::string description,
             std::string expected)
{
    Experiment exp;
    exp.name = std::move(name);
    exp.figure = std::move(figure);
    exp.title = std::move(title);
    exp.description = std::move(description);
    exp.runtime = "~30 s";
    exp.columns = {"batch", "FPGA ns", "speedup vs cuSPARSE",
                   "speedup vs OptKernel"};
    exp.grid =
        Grid::cartesian({intAxis("batch", {1, 2, 4, 16, 32, 64})});
    exp.evaluate = [dim](const ParamPoint &point, const void *,
                         EvalContext &ctx) {
        using baselines::GpuLibrary;
        using baselines::GpuModel;
        const GpuModel cusparse(GpuLibrary::CuSparse);
        const GpuModel optimized(GpuLibrary::OptimizedKernel);
        const auto batch =
            static_cast<std::size_t>(point.getInt("batch"));
        const auto workload = makeWorkload(dim, 0.95);
        const auto nnz = workload.csr.nnz();
        const auto &p = ctx.cache.getFigure(workload.weights)->point;
        const double fpga_ns = p.batchLatencyNs(batch);
        return std::vector<Row>{
            {cell(batch), cell(fpga_ns, 5),
             cell(cusparse.latencyNs(dim, dim, nnz, batch) / fpga_ns,
                  4),
             cell(optimized.latencyNs(dim, dim, nnz, batch) / fpga_ns,
                  4)}};
    };
    exp.expectedShape = std::move(expected);
    return exp;
}

Experiment
makeSigmaDim(std::string name, std::string figure,
             std::uint64_t prepareSeed, bool speedupOnly)
{
    Experiment exp;
    exp.name = std::move(name);
    exp.figure = std::move(figure);
    exp.grid = Grid::cartesian({intAxis("dim", kDimSweep)});
    exp.runtime = "~1 min";
    exp.prepareSeed = prepareSeed;
    exp.prepare = [](const ParamPoint &point, PrepareContext &ctx) {
        auto input = std::make_shared<VectorInput>();
        input->v = makeSignedVector(
            static_cast<std::size_t>(point.getInt("dim")), 8, ctx.rng);
        return std::shared_ptr<const void>(input);
    };
    exp.evaluate = [speedupOnly](const ParamPoint &point,
                                 const void *input, EvalContext &ctx) {
        baselines::SigmaSim sigma;
        const auto dim =
            static_cast<std::size_t>(point.getInt("dim"));
        const auto workload = makeWorkload(dim, 0.98);
        const auto &p = ctx.cache.getFigure(workload.weights)->point;
        const auto result = sigma.runVector(
            workload.csr, static_cast<const VectorInput *>(input)->v);
        if (speedupOnly)
            return std::vector<Row>{
                {cell(dim), cell(result.latencyNs / p.latencyNs, 4)}};
        return std::vector<Row>{
            {cell(dim), cell(workload.csr.nnz()), cell(result.tiles),
             cell(result.latencyNs, 5), cell(p.latencyNs, 5)}};
    };
    return exp;
}

Experiment
makeSigmaSparsity(std::string name, std::string figure,
                  std::uint64_t prepareSeed, bool speedupOnly)
{
    Experiment exp;
    exp.name = std::move(name);
    exp.figure = std::move(figure);
    exp.grid = Grid::cartesian(
        {Axis{"sparsity", {0.70, 0.80, 0.90, 0.95, 0.98}}});
    exp.runtime = "~1 min";
    exp.prepareSeed = prepareSeed;
    exp.prepare = [](const ParamPoint &, PrepareContext &ctx) {
        auto input = std::make_shared<VectorInput>();
        input->v = makeSignedVector(1024, 8, ctx.rng);
        return std::shared_ptr<const void>(input);
    };
    exp.evaluate = [speedupOnly](const ParamPoint &point,
                                 const void *input, EvalContext &ctx) {
        baselines::SigmaSim sigma;
        const std::size_t dim = 1024;
        const double sparsity = point.getReal("sparsity");
        const auto workload = makeWorkload(dim, sparsity);
        const auto &p = ctx.cache.getFigure(workload.weights)->point;
        const auto result = sigma.runVector(
            workload.csr, static_cast<const VectorInput *>(input)->v);
        if (speedupOnly)
            return std::vector<Row>{
                {cell(sparsity * 100.0, 3),
                 cell(result.latencyNs / p.latencyNs, 4)}};
        return std::vector<Row>{
            {cell(sparsity * 100.0, 3), cell(workload.csr.nnz()),
             cell(result.tiles), cell(result.latencyNs, 5),
             cell(p.latencyNs, 5)}};
    };
    return exp;
}

Experiment
makeFig23()
{
    Experiment exp;
    exp.name = "fig23";
    exp.figure = "Figure 23";
    exp.title = "Figure 23: batched speedup over SIGMA "
                "(1024x1024, 95% sparse)";
    exp.description = "FPGA vs SIGMA batched multiplication speedup";
    exp.runtime = "~1 min";
    exp.columns = {"batch", "SIGMA ns", "FPGA ns", "speedup"};
    exp.grid =
        Grid::cartesian({intAxis("batch", {1, 2, 4, 8, 16, 32, 64})});
    exp.prepareSeed = 2323;
    exp.prepare = [](const ParamPoint &point, PrepareContext &ctx) {
        auto input = std::make_shared<BatchInput>();
        input->m = makeSignedBatch(
            static_cast<std::size_t>(point.getInt("batch")), 1024, 8,
            ctx.rng);
        return std::shared_ptr<const void>(input);
    };
    exp.evaluate = [](const ParamPoint &point, const void *input,
                      EvalContext &ctx) {
        baselines::SigmaSim sigma;
        const auto batch =
            static_cast<std::size_t>(point.getInt("batch"));
        const auto workload = makeWorkload(1024, 0.95);
        const auto &p = ctx.cache.getFigure(workload.weights)->point;
        const auto result = sigma.run(
            workload.csr, static_cast<const BatchInput *>(input)->m);
        const double fpga_ns = p.batchLatencyNs(batch);
        return std::vector<Row>{
            {cell(batch), cell(result.latencyNs, 5), cell(fpga_ns, 5),
             cell(result.latencyNs / fpga_ns, 4)}};
    };
    exp.expectedShape =
        "Expected shape: speedup decays from ~12x at batch 1 and "
        "saturates in the single digits.";
    return exp;
}

} // namespace

void
registerBaselineExperiments(Registry &registry)
{
    registry.add(makeFig13());
    registry.add(makeFig14());
    registry.add(makeFig15());
    registry.add(makeFig16());
    registry.add(makeGpuBatch(
        "fig17", "Figure 17", 1024,
        "Figure 17: batched speedup (1024x1024, 95% sparse)",
        "FPGA vs V100 batched speedup against the 1024-dim matrix",
        "Expected shape: large lead at batch 1 shrinking with batch; "
        "the FPGA stays marginally ahead even at 64 because the big "
        "matrix keeps the GPU near-utilized."));
    registry.add(makeGpuBatch(
        "fig18", "Figure 18", 64,
        "Figure 18: batched speedup (64x64, 95% sparse)",
        "FPGA vs V100 batched speedup against the 64-dim matrix",
        "Expected shape: very large batch-1 speedup decaying with "
        "batch, still > 1x at batch 64."));

    auto fig19 = makeSigmaDim("fig19", "Figure 19", 1919, false);
    fig19.title = "Figure 19: FPGA vs SIGMA latency vs dimension "
                  "(98% sparse)";
    fig19.description = "FPGA vs SIGMA latency across dimension";
    fig19.columns = {"dim", "nnz", "tiles", "SIGMA ns", "FPGA ns"};
    fig19.expectedShape =
        "Expected shape: SIGMA ns-scale while fitting the 128x128 "
        "grid, then linear memory-bound growth once tiled (past "
        "~1024).";
    registry.add(std::move(fig19));

    auto fig20 = makeSigmaDim("fig20", "Figure 20", 2020, true);
    fig20.title =
        "Figure 20: speedup over SIGMA vs dimension (98% sparse)";
    fig20.description = "FPGA speedup over SIGMA across dimension";
    fig20.columns = {"dim", "speedup"};
    fig20.expectedShape =
        "Expected shape: single-digit speedup while SIGMA fits (worst "
        "~4x), rising to tens once tiled.";
    registry.add(std::move(fig20));

    auto fig21 = makeSigmaSparsity("fig21", "Figure 21", 2121, false);
    fig21.title = "Figure 21: FPGA vs SIGMA latency vs sparsity "
                  "(1024x1024)";
    fig21.description = "FPGA vs SIGMA latency across sparsity";
    fig21.columns = {"sparsity %", "nnz", "tiles", "SIGMA ns",
                     "FPGA ns"};
    fig21.expectedShape =
        "Expected shape: SIGMA improves dramatically with sparsity; "
        "<=90% sparsity is back in the microsecond regime.";
    registry.add(std::move(fig21));

    auto fig22 = makeSigmaSparsity("fig22", "Figure 22", 2222, true);
    fig22.title =
        "Figure 22: speedup over SIGMA vs sparsity (1024x1024)";
    fig22.description = "FPGA speedup over SIGMA across sparsity";
    fig22.columns = {"sparsity %", "speedup"};
    fig22.expectedShape =
        "Expected shape: tens of x at 70%, easing to single digits at "
        "98%.";
    registry.add(std::move(fig22));

    registry.add(makeFig23());
}

} // namespace spatial::experiments
