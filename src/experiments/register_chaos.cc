/**
 * @file
 * The chaos experiment: open-loop traffic through the wire path under
 * deterministic fault storms.
 *
 * Each scenario stands up a real in-process NetServer, registers a
 * small design set over the wire, installs a seeded FaultPlan, and
 * pushes a pipelined burst of GEMV requests through a NetClient with
 * every degradation mechanism armed — per-request timeouts,
 * reconnect-and-replay, jittered-backoff retry rounds, the server's
 * queue-age watchdog, and the admission controller.  The contract it
 * proves is shed-not-stall: every submitted request either completes
 * bit-exactly (checked against a plain integer multiply) or is
 * explicitly shed / timed out — no stuck future, no wedged server,
 * bounded wall clock.
 *
 * Scenarios (see docs/robustness.md for the site catalog):
 *
 * - `slow_worker`       worker stalls + queue-age watchdog shedding
 * - `eviction_storm`    capacity-1 store churn with compile faults
 *                       and spill-write failures
 * - `cold_corruption`   damaged cold-tier artifacts force recompile
 *                       fallbacks mid-traffic
 * - `disconnect_flood`  dropped connections, partial writes, and
 *                       reader stalls against reconnect-and-replay
 *
 * `spatial-bench run chaos --json=...` writes the headline artifact
 * (BENCH_chaos.json in CI) with admitted-request SLO compliance and
 * the shed fraction per scenario.
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "experiments/registry.h"
#include "matrix/generate.h"
#include "serve/net_client.h"
#include "serve/net_server.h"

namespace spatial::experiments
{

namespace
{

/** Design shape of the chaos workload (small: wall clock is faults). */
constexpr std::size_t kDim = 48;

/** GEMV requests pushed through the wire per scenario. */
constexpr std::size_t kRequests = 256;

/** Retry rounds before leftover Busy/TimedOut work is given up. */
constexpr unsigned kMaxRounds = 40;

/** Liveness bound: a future not resolved by then is a stuck future. */
constexpr auto kLivenessBound = std::chrono::seconds(30);

/** Admitted-request SLO for the compliance column (generous: the
 * point is that admitted work finishes promptly even mid-storm, not
 * that it hits the happy-path latency). */
constexpr double kSloMs = 250.0;

/** Plain integer GEMV of the raw weights: the untiled reference. */
IntMatrix
referenceMultiply(const IntMatrix &weights, const IntMatrix &batch)
{
    IntMatrix out(batch.rows(), weights.cols());
    for (std::size_t b = 0; b < batch.rows(); ++b)
        for (std::size_t r = 0; r < weights.rows(); ++r) {
            const std::int64_t x = batch.at(b, r);
            if (x == 0)
                continue;
            for (std::size_t c = 0; c < weights.cols(); ++c)
                out.at(b, c) += x * weights.at(r, c);
        }
    return out;
}

/** One scenario's fault rules and server/client shape. */
struct Scenario
{
    std::size_t designs = 2;
    std::size_t storeCapacity = 64;
    bool spill = false;
    std::size_t maxQueue = 64;
    std::chrono::milliseconds maxQueueAge{0};
    std::chrono::milliseconds slowWorkerAfter{0};
    unsigned reconnects = 8;
    /** Outstanding-request cap per retry round.  A full burst is the
     * default; connection-fault scenarios use a small window so a
     * reconnect replays a handful of frames instead of re-dialing
     * into the drop rate with hundreds outstanding. */
    std::size_t window = kRequests;
    /** (site, rule) pairs installed once registration is done. */
    std::vector<std::pair<fault::Site, fault::Rule>> rules;
};

Scenario
makeScenario(const std::string &name, std::uint64_t seed)
{
    using fault::Rule;
    using fault::Site;
    Scenario s;
    if (name == "slow_worker") {
        // Workers randomly stall 80ms per group — long enough that
        // both workers stalling at once ages the queue past the 40ms
        // watchdog cutoff, so some groups shed and the slow-worker
        // detector flags the stalled threads.
        s.maxQueue = 48;
        s.maxQueueAge = std::chrono::milliseconds(40);
        s.slowWorkerAfter = std::chrono::milliseconds(10);
        s.rules = {{Site::ServeWorkerStall, Rule{0.45, seed ^ 1, 80}}};
    } else if (name == "eviction_storm") {
        // Three designs through a capacity-1 store: every request is
        // a potential evict/demote/promote, with transient compile
        // failures, latency spikes, and spill-write errors layered on.
        s.designs = 3;
        s.storeCapacity = 1;
        s.spill = true;
        s.maxQueue = 32;
        s.maxQueueAge = std::chrono::milliseconds(120);
        s.rules = {{Site::StoreCompileFail, Rule{0.2, seed ^ 2, 0}},
                   {Site::StoreCompileDelay, Rule{0.3, seed ^ 3, 10}},
                   {Site::ColdWriteFail, Rule{0.25, seed ^ 4, 0}}};
    } else if (name == "cold_corruption") {
        // Same churn, but the cold tier itself lies: short writes and
        // post-load corruption force recompile fallbacks mid-traffic
        // while outputs must stay bit-exact.
        s.designs = 3;
        s.storeCapacity = 1;
        s.spill = true;
        s.maxQueue = 32;
        s.maxQueueAge = std::chrono::milliseconds(120);
        s.rules = {{Site::ColdWriteShort, Rule{0.3, seed ^ 5, 0}},
                   {Site::ColdReadFail, Rule{0.2, seed ^ 6, 0}},
                   {Site::ColdReadCorrupt, Rule{0.3, seed ^ 7, 0}}};
    } else if (name == "disconnect_flood") {
        // The wire misbehaves: dispatched requests drop the
        // connection, responses trickle out a few bytes per poll
        // round, and the client reader stalls — reconnect-and-replay
        // plus timeouts must still land every request.  The small
        // window keeps each reconnect's replay set (everything
        // outstanding) from compounding with the per-frame drop rate.
        s.reconnects = 200;
        s.window = 16;
        s.rules = {{Site::NetConnDrop, Rule{0.01, seed ^ 8, 0}},
                   {Site::NetWritePartial, Rule{0.3, seed ^ 9, 96}},
                   {Site::ClientReadStall, Rule{0.2, seed ^ 10, 2}}};
    } else {
        SPATIAL_FATAL("chaos: unknown scenario '", name, "'");
    }
    return s;
}

Experiment
makeChaos()
{
    Experiment exp;
    exp.name = "chaos";
    exp.figure = "ours (robustness)";
    exp.title = "Chaos: wire-path traffic under deterministic fault "
                "storms";
    exp.description =
        "fault-storm scenarios over the TCP path; every request "
        "completes bit-exactly or is explicitly shed";
    exp.runtime = "~20 s (timed fault storms)";
    exp.columns = {"scenario", "requests", "ok", "shed", "timeouts",
                   "lost", "retries", "reconnects", "watchdog shed",
                   "faults", "slo %", "shed frac", "bit exact"};
    exp.grid =
        Grid::cases({"scenario"},
                    {{Value{std::string("slow_worker")}},
                     {Value{std::string("eviction_storm")}},
                     {Value{std::string("cold_corruption")}},
                     {Value{std::string("disconnect_flood")}}});
    exp.serialOnly = true; // one process-wide FaultPlan at a time
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &ctx) {
        namespace fs = std::filesystem;
        const std::string &name = point.getString("scenario");
        const std::uint64_t seed = mixSeed(0xc4a05, ctx.seed);
        const Scenario scenario = makeScenario(name, seed);

        fault::FaultPlan &plan = fault::FaultPlan::instance();
        plan.clear();

        // The server: one shard, two workers, tight batching so the
        // burst forms many groups; chaos scenarios optionally add a
        // spill directory and the queue-age watchdog.
        serve::NetServerOptions net;
        net.shards = 1;
        net.maxQueue = scenario.maxQueue;
        net.drainTimeout = std::chrono::milliseconds(2000);
        net.serve.workers = 2;
        net.serve.maxBatch = 32;
        net.serve.maxDelay = std::chrono::microseconds(500);
        net.serve.storeCapacity = scenario.storeCapacity;
        net.serve.maxQueueAge = scenario.maxQueueAge;
        net.serve.slowWorkerAfter = scenario.slowWorkerAfter;
        net.serve.sim = ctx.sim;
        fs::path spill_dir;
        if (scenario.spill) {
            spill_dir = fs::temp_directory_path() /
                        ("spatial-chaos-" +
                         std::to_string(::getpid()) + "-" + name);
            std::error_code ec;
            fs::remove_all(spill_dir, ec);
            net.serve.storeSpillDir = spill_dir.string();
        }
        serve::NetServer server(net);

        serve::NetClientOptions copts;
        copts.requestTimeout = std::chrono::milliseconds(500);
        copts.maxReconnects = scenario.reconnects;
        copts.backoffSeed = seed ^ 0xb0ff;
        serve::NetClient client("127.0.0.1", server.port(), copts);

        // Designs and the request stream, registered over the wire
        // before the faults arm — registration is the fixture, not
        // the system under test here.
        Rng rng(seed);
        core::CompileOptions compile;
        compile.inputBits = 8;
        compile.inputsSigned = true;
        compile.signMode = core::SignMode::Csd;
        std::vector<IntMatrix> weights;
        std::vector<std::uint32_t> ids;
        for (std::size_t d = 0; d < scenario.designs; ++d) {
            weights.push_back(makeSignedElementSparseMatrix(
                kDim, kDim, compile.inputBits, 0.9, rng));
            std::uint32_t id = 0;
            if (client.registerDesign(weights.back(), compile, &id) !=
                serve::wire::Status::Ok)
                SPATIAL_FATAL("chaos: registration failed");
            ids.push_back(id);
        }
        std::vector<std::size_t> target(kRequests);
        std::vector<std::vector<std::int64_t>> inputs;
        std::vector<IntMatrix> expected;
        inputs.reserve(kRequests);
        expected.reserve(kRequests);
        for (std::size_t i = 0; i < kRequests; ++i) {
            target[i] = i % scenario.designs;
            inputs.push_back(
                makeSignedVector(kDim, compile.inputBits, rng));
            IntMatrix one(1, kDim);
            for (std::size_t c = 0; c < kDim; ++c)
                one.at(0, c) = inputs.back()[c];
            expected.push_back(
                referenceMultiply(weights[target[i]], one));
        }

        // Arm the storm.
        for (const auto &[site, rule] : scenario.rules)
            plan.configure(site, rule);

        // Pipelined burst, then bounded jittered-backoff retry
        // rounds: Busy (admission or watchdog shed) and TimedOut
        // resubmit; whatever survives kMaxRounds is given up as shed.
        std::size_t ok = 0, shed = 0, timeouts = 0, lost = 0,
                    retries = 0;
        std::vector<double> latencies;
        Rng backoff_rng(seed ^ 0x0b0ff5eedULL);
        std::vector<std::size_t> todo(kRequests);
        for (std::size_t i = 0; i < kRequests; ++i)
            todo[i] = i;
        const auto start = std::chrono::steady_clock::now();
        for (unsigned round = 0;
             round < kMaxRounds && !todo.empty(); ++round) {
            std::vector<std::size_t> again;
            for (std::size_t base = 0; base < todo.size();
                 base += scenario.window) {
                const std::size_t end = std::min(
                    todo.size(), base + scenario.window);
                std::vector<
                    std::pair<std::size_t,
                              std::future<serve::RemoteResult>>>
                    futures;
                futures.reserve(end - base);
                for (std::size_t k = base; k < end; ++k) {
                    const std::size_t i = todo[k];
                    futures.emplace_back(
                        i, client.submit(
                               ids[target[i]],
                               serve::Request::gemv(inputs[i])));
                }
                for (auto &[i, future] : futures) {
                    // The liveness gate: a future the client never
                    // resolves is exactly the bug this experiment
                    // exists to catch.
                    if (future.wait_for(kLivenessBound) !=
                        std::future_status::ready)
                        SPATIAL_FATAL(
                            "chaos(", name, "): request ", i,
                            " stuck — future unresolved after ",
                            kLivenessBound.count(), "s");
                    serve::RemoteResult r = future.get();
                    if (r.status == serve::wire::Status::Ok) {
                        if (!(r.output == expected[i]))
                            SPATIAL_FATAL(
                                "chaos(", name, "): request ", i,
                                " completed with wrong bits");
                        ++ok;
                        latencies.push_back(r.latencySeconds() * 1e3);
                    } else if (r.status ==
                               serve::wire::Status::Busy) {
                        ++shed;
                        again.push_back(i);
                    } else if (r.status ==
                               serve::wire::Status::TimedOut) {
                        ++timeouts;
                        again.push_back(i);
                    } else if (r.status ==
                               serve::wire::Status::Disconnected) {
                        ++lost; // reconnect budget exhausted
                    } else {
                        SPATIAL_FATAL(
                            "chaos(", name, "): unexpected status ",
                            serve::wire::statusName(r.status));
                    }
                }
            }
            retries += again.size();
            todo = std::move(again);
            if (!todo.empty())
                std::this_thread::sleep_for(serve::jitteredBackoff(
                    round, std::chrono::milliseconds(1),
                    std::chrono::milliseconds(50), backoff_rng));
        }
        // Leftovers were answered (shed/timed out) every round and
        // simply ran out of retry budget — explicitly given up, not
        // stuck.
        const std::size_t given_up = todo.size();
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();

        // Disarm before the bookkeeping round trips so fetchStats and
        // the shutdown drain run on a clean wire.
        const std::uint64_t faults = plan.injectedTotal();
        plan.clear();

        std::size_t watchdog_shed = 0;
        IntMatrix shard_stats;
        if (client.fetchStats(&shard_stats) ==
                serve::wire::Status::Ok &&
            shard_stats.cols() >= serve::wire::kShardStatsCols)
            for (std::size_t s = 0; s < shard_stats.rows(); ++s)
                watchdog_shed += static_cast<std::size_t>(
                    shard_stats.at(s, serve::wire::kStatWatchdogShed));
        const std::size_t reconnects = client.stats().reconnects;
        client.close();
        server.shutdown();
        if (!spill_dir.empty()) {
            std::error_code ec;
            fs::remove_all(spill_dir, ec);
        }

        std::sort(latencies.begin(), latencies.end());
        const double slo =
            latencies.empty()
                ? 1.0
                : static_cast<double>(
                      std::upper_bound(latencies.begin(),
                                       latencies.end(), kSloMs) -
                      latencies.begin()) /
                      static_cast<double>(latencies.size());
        const double shed_fraction =
            static_cast<double>(kRequests - ok) /
            static_cast<double>(kRequests);
        SPATIAL_INFORM("chaos(", name, "): ", ok, "/", kRequests,
                       " ok in ", seconds, "s, ", given_up,
                       " given up, ", faults, " faults injected");

        return std::vector<Row>{
            {cell(name),
             cell(static_cast<std::int64_t>(kRequests)),
             cell(static_cast<std::int64_t>(ok)),
             cell(static_cast<std::int64_t>(shed)),
             cell(static_cast<std::int64_t>(timeouts)),
             cell(static_cast<std::int64_t>(lost)),
             cell(static_cast<std::int64_t>(retries)),
             cell(static_cast<std::int64_t>(reconnects)),
             cell(static_cast<std::int64_t>(watchdog_shed)),
             cell(static_cast<std::int64_t>(faults)),
             cell(slo * 100.0, 4), cell(shed_fraction, 4),
             cell("yes")}};
    };
    exp.expectedShape =
        "Every scenario finishes with ok + given-up == requests and "
        "zero stuck futures; admitted requests stay near 100% SLO "
        "compliance while the shed fraction absorbs the overload — "
        "shed-not-stall.  The storm scenarios report nonzero injected "
        "faults, and disconnect_flood reports nonzero reconnects.";
    return exp;
}

} // namespace

void
registerChaosExperiments(Registry &registry)
{
    registry.add(makeChaos());
}

} // namespace spatial::experiments
