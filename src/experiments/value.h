/**
 * @file
 * Typed values and result rows for the experiment subsystem.
 *
 * Every experiment declares an output schema (column names) and emits
 * rows of Cell, each carrying both the typed value (for JSON/CSV
 * emission and programmatic checks) and the exact text the table
 * renderer prints — so porting a figure onto the registry cannot change
 * a single character of its table.
 */

#ifndef SPATIAL_EXPERIMENTS_VALUE_H
#define SPATIAL_EXPERIMENTS_VALUE_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

/**
 * @namespace spatial::experiments
 * The experiment subsystem: declarative figure/scenario specs, the
 * registry, the threaded sweep engine, and the design cache behind
 * the spatial-bench CLI.
 */
namespace spatial::experiments
{

/** A typed scalar: integer, real, or string. */
using Value = std::variant<std::int64_t, double, std::string>;

/** True when the value holds an integer. */
bool isInt(const Value &v);

/** True when the value holds a real. */
bool isReal(const Value &v);

/** True when the value holds a string. */
bool isString(const Value &v);

/** The integer payload; fatal if the value is not an integer. */
std::int64_t asInt(const Value &v);

/** The numeric payload, promoting integers; fatal on strings. */
double asReal(const Value &v);

/** The string payload; fatal if the value is not a string. */
const std::string &asString(const Value &v);

/**
 * Loose equality for grid-override filtering: numerics compare by
 * value (so an integer 64 matches a real 64.0), strings exactly.
 */
bool valueMatches(const Value &a, const Value &b);

/** Render a value for labels and error messages. */
std::string valueText(const Value &v);

/**
 * One result cell: the typed value plus the pre-formatted table text.
 *
 * The factory functions mirror Table::cell exactly, so a row renders
 * identically to the hand-written bench binaries they replaced.
 */
struct Cell
{
    Value value;      //!< typed payload (JSON/CSV, tests)
    std::string text; //!< table rendering (Table::cell formatting)
};

/** Real-valued cell formatted with the given precision. */
Cell cell(double v, int precision = 4);
/** Integer cell. */
Cell cell(std::int64_t v);
/** Integer cell (unsigned sources). */
Cell cell(std::uint64_t v);
/** Integer cell (plain int sources). */
Cell cell(int v);
/** String cell. */
Cell cell(std::string v);
/** String cell from a literal. */
Cell cell(const char *v);

/** One output row; width must match the experiment's column count. */
using Row = std::vector<Cell>;

} // namespace spatial::experiments

#endif // SPATIAL_EXPERIMENTS_VALUE_H
