#include "serve/request.h"

#include "common/logging.h"

namespace spatial::serve
{

const char *
requestKindName(RequestKind kind)
{
    switch (kind) {
      case RequestKind::Gemv:
        return "gemv";
      case RequestKind::GemvBatch:
        return "gemv_batch";
      case RequestKind::EsnStep:
        return "esn_step";
      case RequestKind::EsnSequence:
        return "esn_sequence";
    }
    return "?";
}

const char *
flushReasonName(FlushReason reason)
{
    switch (reason) {
      case FlushReason::Full:
        return "full";
      case FlushReason::Deadline:
        return "deadline";
      case FlushReason::Drain:
        return "drain";
      case FlushReason::Direct:
        return "direct";
    }
    return "?";
}

Request
Request::gemv(std::vector<std::int64_t> x)
{
    Request r;
    r.kind = RequestKind::Gemv;
    r.vec = std::move(x);
    return r;
}

Request
Request::gemvBatch(IntMatrix xs)
{
    Request r;
    r.kind = RequestKind::GemvBatch;
    r.batch = std::move(xs);
    return r;
}

Request
Request::esnStep(std::vector<std::int64_t> state,
                 std::vector<std::int64_t> inject, int post_shift,
                 int state_bits)
{
    Request r;
    r.kind = RequestKind::EsnStep;
    r.vec = std::move(state);
    r.inject = std::move(inject);
    r.postShift = post_shift;
    r.stateBits = state_bits;
    return r;
}

Request
Request::esnSequence(std::vector<std::int64_t> state0,
                     IntMatrix inject_seq, int post_shift, int state_bits)
{
    Request r;
    r.kind = RequestKind::EsnSequence;
    r.vec = std::move(state0);
    r.injectSeq = std::move(inject_seq);
    r.postShift = post_shift;
    r.stateBits = state_bits;
    return r;
}

std::vector<std::int64_t>
Response::vector() const
{
    SPATIAL_ASSERT(output.rows() >= 1, "empty response");
    std::vector<std::int64_t> out(output.cols());
    for (std::size_t c = 0; c < output.cols(); ++c)
        out[c] = output.at(0, c);
    return out;
}

} // namespace spatial::serve
