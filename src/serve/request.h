/**
 * @file
 * Request and response types of the online serving layer.
 *
 * A Request is one unit of client work against one registered design:
 * a single GEMV, a pre-batched block of GEMVs, one integer-ESN state
 * update, or a whole sequential ESN trajectory.  The first three are
 * *lane-shaped* — each contributes one or more independent vectors that
 * the Batcher packs into a wide engine group — while EsnSequence is
 * inherently sequential (each step feeds the next) and runs on a
 * persistent TapeGemv instead.
 *
 * Responses carry the decoded outputs plus the timing breadcrumbs the
 * load generator turns into latency percentiles, so open-loop clients
 * never have to block per-request just to timestamp completion.
 */

#ifndef SPATIAL_SERVE_REQUEST_H
#define SPATIAL_SERVE_REQUEST_H

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "matrix/bits.h"
#include "matrix/dense.h"

/**
 * @namespace spatial::serve
 * The online serving layer: DesignStore (LRU of hot compiled designs),
 * Batcher (deadline-aware lane batching), Server (persistent worker
 * pool with per-design fairness), and the load generator behind the
 * spatial-serve CLI and the serving_throughput experiment.
 */
namespace spatial::serve
{

/** Handle to a design registered with a Server. */
using DesignId = std::size_t;

/** Monotonic clock all serve-layer timestamps use. */
using Clock = std::chrono::steady_clock;

/** What one request asks the design to compute. */
enum class RequestKind : std::uint8_t
{
    /** o = x^T V for one vector (one lane). */
    Gemv,
    /** One o = x^T V per row of a client-provided block (B lanes). */
    GemvBatch,
    /**
     * One integer-ESN update, clip((x^T W + inject) >> postShift):
     * the gemv rides a lane; shift/clip/inject happen at scatter time.
     */
    EsnStep,
    /**
     * A T-step recurrent trajectory of EsnStep updates.  Sequential by
     * construction (state t feeds step t+1), so it bypasses the lane
     * batcher and runs on a persistent single-vector tape executor.
     */
    EsnSequence,
};

/** Printable kind name for stats and errors. */
const char *requestKindName(RequestKind kind);

/**
 * The integer-ESN activation the ESN request kinds apply to a
 * pre-activation sum: saturating clip of the right-shifted value to
 * the signed stateBits range — the same update
 * esn::IntReservoir::step performs.  One definition for every serve
 * execution path (batched scatter, sequential jobs, the load
 * generator's naive reference).
 */
inline std::int64_t
esnClipUpdate(std::int64_t pre, int post_shift, int state_bits)
{
    return std::clamp(pre >> post_shift, minSigned(state_bits),
                      maxSigned(state_bits));
}

/** One unit of client work; build with the factory helpers. */
struct Request
{
    /** Which computation this request asks for. */
    RequestKind kind = RequestKind::Gemv;

    /**
     * Gemv/EsnStep: the input vector (length rows).
     * EsnSequence: the initial state x(0).
     * Unused by GemvBatch.
     */
    std::vector<std::int64_t> vec;

    /** GemvBatch: the B x rows input block.  Unused otherwise. */
    IntMatrix batch;

    /**
     * EsnStep: additive pre-activation contribution (length cols),
     * already aligned to the recurrent term's 2^postShift scale — the
     * W_in u(n) term of the reservoir update.  Empty means zero.
     */
    std::vector<std::int64_t> inject;

    /** EsnSequence: per-step inject rows (T x cols). */
    IntMatrix injectSeq;

    /** ESN kinds: right-shift applied to the pre-activation. */
    int postShift = 0;

    /** ESN kinds: saturating clip width (signed stateBits range). */
    int stateBits = 8;

    /** A single-vector GEMV request. */
    static Request gemv(std::vector<std::int64_t> x);

    /** A pre-batched GEMV request (one lane per row of xs). */
    static Request gemvBatch(IntMatrix xs);

    /** One integer-ESN state update from `state`. */
    static Request esnStep(std::vector<std::int64_t> state,
                           std::vector<std::int64_t> inject,
                           int post_shift, int state_bits);

    /** A T-step ESN trajectory from `state0` (T = injectSeq rows). */
    static Request esnSequence(std::vector<std::int64_t> state0,
                               IntMatrix inject_seq, int post_shift,
                               int state_bits);

    /** Engine lanes this request occupies in a batched group. */
    std::size_t lanes() const
    {
        return kind == RequestKind::GemvBatch ? batch.rows() : 1;
    }
};

/** Why a group left the batcher. */
enum class FlushReason : std::uint8_t
{
    Full,     //!< the group reached max_batch lanes
    Deadline, //!< the oldest queued request hit max_delay
    Drain,    //!< an explicit drain() / shutdown flush
    Direct,   //!< bypassed batching (sequential EsnSequence jobs)
};

/** Printable reason name for stats and the bench JSON. */
const char *flushReasonName(FlushReason reason);

/** The outcome of one request. */
struct Response
{
    /**
     * Decoded outputs: 1 x cols for Gemv/EsnStep, B x cols for
     * GemvBatch, and the T x cols state trajectory for EsnSequence.
     */
    IntMatrix output;

    /** Row 0 of `output` as a vector (single-vector kinds). */
    std::vector<std::int64_t> vector() const;

    std::chrono::time_point<Clock> submitAt{}; //!< enqueue timestamp
    std::chrono::time_point<Clock> flushAt{};  //!< left the batcher
    std::chrono::time_point<Clock> doneAt{};   //!< outputs scattered

    /** Lanes in the executed group, before 64-lane padding. */
    std::uint32_t groupLanes = 0;

    /** Why the group this request rode in was flushed. */
    FlushReason flushReason = FlushReason::Direct;

    /**
     * Activity-gated tape segments the executing engine ran for this
     * request's group (or EsnSequence job); 0 when gating is disabled.
     */
    std::uint64_t segmentsExecuted = 0;

    /** Segments the engine skipped as provably quiescent. */
    std::uint64_t segmentsSkipped = 0;

    /**
     * True when the queue-age watchdog shed this request instead of
     * executing it: `output` is empty and the wire front end answers
     * Status::Busy.  See ServeOptions::maxQueueAge.
     */
    bool shed = false;

    /** End-to-end latency in seconds (submit to scatter). */
    double latencySeconds() const
    {
        return std::chrono::duration<double>(doneAt - submitAt).count();
    }
};

} // namespace spatial::serve

#endif // SPATIAL_SERVE_REQUEST_H
