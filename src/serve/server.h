/**
 * @file
 * The in-process serving subsystem: multi-design request scheduling
 * with deadline-aware lane batching on the wide tape engine.
 *
 * Request lifecycle:
 *
 *  1. registerDesign() compiles (or LRU-fetches) the model through the
 *     DesignStore and creates its Batcher;
 *  2. submit() queues a Request on the design's Batcher and returns a
 *     future; the batcher cuts groups on max_batch lanes, max_delay
 *     deadlines (a timer thread watches the earliest deadline), or
 *     drain;
 *  3. flushed groups enter per-design ready queues; a persistent
 *     worker pool pops them round-robin across designs (one hot model
 *     cannot starve the rest), pads each group to the 64-lane engine
 *     boundary, runs it through core::runBatchWide, and scatters the
 *     decoded rows back to the member futures.  EsnSequence requests
 *     are inherently sequential and run on a per-job core::TapeGemv
 *     instead, scheduled through the same fair queues.
 *
 * All synchronization lives here: Batcher and the ready queues are
 * driven under one scheduling mutex; group execution (the expensive
 * part) runs outside it.
 */

#ifndef SPATIAL_SERVE_SERVER_H
#define SPATIAL_SERVE_SERVER_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "core/options.h"
#include "core/tiled_design.h"
#include "serve/batcher.h"
#include "serve/design_store.h"
#include "serve/request.h"

namespace spatial::serve
{

/** Server-wide configuration. */
struct ServeOptions
{
    /** Lane budget per flushed group (Batcher full trigger). */
    std::size_t maxBatch = 256;

    /** Deadline for a queued request before a forced flush. */
    std::chrono::microseconds maxDelay{2000};

    /** Execution workers; 0 = one per hardware context. */
    unsigned workers = 0;

    /** DesignStore hot-tier capacity (resident compiled designs). */
    std::size_t storeCapacity = 64;

    /**
     * Cold-tier spill directory for the DesignStore; empty disables
     * tiering.  With a cold tier, designs evicted from the hot tier
     * are serialized to disk and rematerialized (loaded, not
     * recompiled) on their next request — see docs/store.md.
     */
    std::string storeSpillDir;

    /**
     * Column-tiling budget for registered designs: matrices whose
     * compiled ones-cost exceeds TileOptions::onesBudget are compiled
     * and executed as column-strip tiles (core::TiledDesign), so
     * dim 1024-8192 designs serve through the same paths as small
     * ones.
     */
    core::TileOptions tile;

    /**
     * Engine knobs for group execution.  `threads` is ignored: each
     * group runs single-threaded inside one worker — parallelism comes
     * from the pool running independent groups.
     */
    core::SimOptions sim;

    /**
     * Queue-age watchdog: a ready group whose oldest request has been
     * queued longer than this is shed — its futures resolve
     * immediately with Response::shed set (the wire front end maps
     * that to Status::Busy) instead of waiting behind a stalled
     * worker.  0 disables the watchdog (no thread is started).
     */
    std::chrono::milliseconds maxQueueAge{0};

    /**
     * Slow-worker detection: a worker busy on one group longer than
     * this is flagged (counted in ServerStats::slowWorkerFlags and
     * warned once per episode).  0 disables.  Only meaningful when
     * the watchdog is running, i.e. maxQueueAge or this is non-zero.
     */
    std::chrono::milliseconds slowWorkerAfter{0};
};

/** Cumulative server counters (point-in-time snapshot). */
struct ServerStats
{
    std::size_t requests = 0;      //!< submits accepted
    std::size_t lanes = 0;         //!< engine lanes of real work
    std::size_t groups = 0;        //!< batched groups executed
    std::size_t paddedLanes = 0;   //!< lanes after 64-lane padding
    std::size_t flushFull = 0;     //!< groups cut by the lane budget
    std::size_t flushDeadline = 0; //!< groups cut by max_delay
    std::size_t flushDrain = 0;    //!< groups cut by drain()
    std::size_t enginePasses = 0;  //!< netlist passes across all groups
                                   //!< (group lanes / adaptive 64*W)
    std::uint64_t segmentsExecuted = 0; //!< activity-gated tape segments run
    std::uint64_t segmentsSkipped = 0;  //!< segments skipped as quiescent
    std::uint64_t jitGroups = 0;     //!< groups run through JIT modules
    std::uint64_t jitFallbackGroups = 0; //!< JIT requested, interpreter ran
    std::size_t sequences = 0;     //!< EsnSequence jobs executed
    std::size_t sequenceSteps = 0; //!< total sequential ESN steps
    std::size_t watchdogShed = 0;  //!< requests shed by the watchdog
    std::size_t slowWorkerFlags = 0; //!< slow-worker episodes flagged
    /** Injected faults observed by this server and its store (worker
     * stalls plus admission compile faults; see common/fault.h). */
    std::uint64_t faultsInjected = 0;
    DesignStore::Stats store;      //!< compile cache accounting

    /** Fraction of padded engine lanes carrying real work. */
    double occupancy() const
    {
        return paddedLanes == 0
                   ? 0.0
                   : static_cast<double>(lanes) /
                         static_cast<double>(paddedLanes);
    }
};

/**
 * Asynchronous multi-design server over the wide tape engine.
 *
 * Thread-safe: submit() may be called from any number of client
 * threads.  The destructor drains outstanding work before joining the
 * pool, so every returned future is fulfilled.
 */
class Server
{
  public:
    /** Start the worker pool and deadline timer. */
    explicit Server(ServeOptions options = {});

    /** Drain outstanding work and join the pool. */
    ~Server();

    /** Non-copyable: owns worker threads and pending promises. */
    Server(const Server &) = delete;
    /** Non-assignable (same reason). */
    Server &operator=(const Server &) = delete;

    /**
     * Register (weights, options) for serving, compiling through the
     * tiered store on first sight.  Re-registering an identical
     * design returns the existing id (requests then share its
     * batcher).  A registration is permanent but its compiled design
     * is not pinned: the store's LRU may demote it (to the cold tier
     * when one is configured), and the next request rematerializes
     * it.
     */
    DesignId registerDesign(const IntMatrix &weights,
                            const core::CompileOptions &options);

    /**
     * Queue one request against a registered design.  Shape errors are
     * fatal (the caller holds the design's dimensions).  The future is
     * fulfilled when the request's group has executed.
     */
    std::future<Response> submit(DesignId id, Request request);

    /** Flush every open group and wait until all work has executed. */
    void drain();

    /**
     * Bounded drain: flush every open group and wait at most
     * `timeout` for outstanding work to finish.  Returns true when
     * the server went idle, false on timeout — queued and in-flight
     * work then remains pending (the destructor still waits for it;
     * a net front end abandons its replies instead, see
     * NetServerOptions::drainTimeout).
     */
    bool drainFor(std::chrono::milliseconds timeout);

    /** Current counters. */
    ServerStats stats() const;

    /**
     * The compiled design behind an id (for reference checks).
     * Materializes through the store — a demoted design is reloaded
     * from the cold tier (or recompiled) on the spot, so the returned
     * pointer is always live, but the call may block on that load.
     */
    std::shared_ptr<const core::TiledDesign> design(DesignId id);

    /** Number of registered designs. */
    std::size_t designCount() const;

    /** The server's configuration (after clamping). */
    const ServeOptions &options() const { return options_; }

  private:
    /**
     * One registered design's scheduling state.  The entry does NOT
     * pin the compiled design: workers materialize it through the
     * store per group, so the hot tier's LRU can really demote a cold
     * design to disk and promote it back on its next request.  The
     * identity (key), the weights, and the compile options are kept
     * so a promotion that finds a corrupt spill file can recompile.
     *
     * key/weights/compile are const — workers read them after
     * dropping the scheduling lock (see workerLoop), which is safe
     * exactly because nothing can write them after construction.
     * batcher and ready are mutable scheduling state and only ever
     * touched under the Server's mutex_.
     */
    struct DesignEntry
    {
        const experiments::DesignKey key;
        const IntMatrix weights;
        const core::CompileOptions compile;
        Batcher batcher;
        std::deque<Group> ready;

        DesignEntry(DesignId id, experiments::DesignKey k,
                    IntMatrix w, const core::CompileOptions &c,
                    const BatchPolicy &policy)
            : key(std::move(k)), weights(std::move(w)), compile(c),
              batcher(id, policy)
        {}
    };

    void workerLoop(unsigned index) SPATIAL_EXCLUDES(mutex_);
    void timerLoop() SPATIAL_EXCLUDES(mutex_);
    void watchdogLoop() SPATIAL_EXCLUDES(mutex_);

    /** Flush every batcher (Drain reason) and enqueue the groups. */
    void flushAllLocked() SPATIAL_REQUIRES(mutex_);

    /** Resolve every request in `shed` with Response::shed set. */
    static void fulfillShed(std::vector<Group> shed);

    /** Pop the next ready group round-robin; nullopt when idle. */
    std::optional<Group> popGroupLocked() SPATIAL_REQUIRES(mutex_);

    /** Enqueue flushed groups and account their flush reason. */
    void pushGroupsLocked(std::vector<Group> groups)
        SPATIAL_REQUIRES(mutex_);

    /** Execute one group outside the lock and fulfill its futures. */
    void executeGroup(const core::TiledDesign &design, Group group)
        SPATIAL_EXCLUDES(mutex_);

    /** Run one EsnSequence request on a persistent tape executor. */
    void executeSequence(const core::TiledDesign &design, Group group)
        SPATIAL_EXCLUDES(mutex_);

    ServeOptions options_;
    DesignStore store_;

    mutable Mutex mutex_;
    CondVar workCv_;  //!< workers: ready or stopping
    CondVar timerCv_; //!< timer: deadlines changed
    CondVar idleCv_;  //!< drain(): all work finished
    CondVar watchdogCv_; //!< watchdog: stop requested

    /**
     * Registered designs; the vector (and each entry's batcher/ready
     * queue) is guarded, but the heap DesignEntry objects themselves
     * outlive any reallocation, so a worker may hold a reference to
     * one across an unlock and keep reading its const identity
     * fields.
     */
    std::vector<std::unique_ptr<DesignEntry>> designs_
        SPATIAL_GUARDED_BY(mutex_);
    std::unordered_map<experiments::DesignKey, DesignId,
                       experiments::DesignKeyHash>
        designIds_ SPATIAL_GUARDED_BY(mutex_);
    /** Round-robin design cursor. */
    std::size_t rrCursor_ SPATIAL_GUARDED_BY(mutex_) = 0;
    std::size_t readyGroups_ SPATIAL_GUARDED_BY(mutex_) = 0;
    std::size_t inFlight_ SPATIAL_GUARDED_BY(mutex_) = 0;
    bool stopping_ SPATIAL_GUARDED_BY(mutex_) = false;

    ServerStats stats_ SPATIAL_GUARDED_BY(mutex_);

    /** Worker-stall faults injected (see common/fault.h); kept
     * outside stats_ so the hot path books it without the lock. */
    std::atomic<std::uint64_t> workerFaults_{0};

    /**
     * Per-worker busy-since timestamps (microseconds since the steady
     * epoch; 0 = idle), written by the owning worker around group
     * execution and read by the watchdog for slow-worker flags.
     */
    std::unique_ptr<std::atomic<std::int64_t>[]> workerBusyUs_;

    std::vector<std::thread> workers_;
    std::thread timer_;
    std::thread watchdog_; //!< started only when the watchdog is on
};

} // namespace spatial::serve

#endif // SPATIAL_SERVE_SERVER_H
