/**
 * @file
 * Length-prefixed binary wire protocol of the network serving layer.
 *
 * Every message travels as one *frame*: a little-endian `u32` payload
 * byte count followed by the payload itself.  Payloads open with a
 * fixed 16-byte header (magic, version, kind-or-status, request id,
 * design id) and continue with a kind-specific body; all integers are
 * little-endian, all vectors and matrices are flat `i64` arrays with
 * explicit dimensions, so the same bytes decode identically on every
 * host.  See docs/serving.md for the full layout tables.
 *
 * Decoding is defensive by construction: every read goes through a
 * bounds-checked cursor, every count is validated against both a
 * protocol cap and the actual bytes present, and a malformed frame
 * (truncated, oversized, bit-flipped, wrong magic or version) yields a
 * Status error — never a crash, never a read past the buffer.  The
 * fuzz loop in tests/wire_test.cc pins this under ASan.
 */

#ifndef SPATIAL_SERVE_WIRE_H
#define SPATIAL_SERVE_WIRE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/options.h"
#include "serve/request.h"

namespace spatial::serve
{

/**
 * @namespace spatial::serve::wire
 * Frame codec shared by NetServer and NetClient: encode helpers append
 * complete frames to a byte buffer; decode helpers consume exactly one
 * frame and report malformed input as a Status instead of dying.
 */
namespace wire
{

/** First two payload bytes of every frame ("SW", little-endian). */
constexpr std::uint16_t kMagic = 0x5753;

/**
 * Protocol version carried in every header.  The versioning rule:
 * incompatible layout changes bump this and the decoder rejects
 * mismatches with Status::BadVersion — there is no cross-version
 * negotiation, a client and server must agree exactly.  v2 widened
 * the Stats matrix to kShardStatsCols = 12 (design-store tier
 * counters) and raised kMaxFrameBytes for large-matrix registration;
 * v3 widened it again to 14 (watchdog sheds, injected-fault count).
 */
constexpr std::uint8_t kVersion = 3;

/** Fixed payload header size (magic + version + kind + ids). */
constexpr std::size_t kHeaderBytes = 16;

/**
 * Hard cap on one frame's payload bytes (1 GiB).  Sized so a dense
 * dim-8192 RegisterDesign frame (8192^2 i64 weights = 512 MiB) fits:
 * the protocol itself no longer bounds design dimension — the
 * server's admission budget does (NetServerOptions::maxRegisterDim /
 * maxFrameBytes, answered with Status::BadRequest or a dropped
 * connection).  peekFrame() callers pass their own tighter budget.
 */
constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

/** Cap on any single vector/matrix dimension in a frame. */
constexpr std::uint32_t kMaxDim = 1u << 20;

/** Cap on EsnSequence steps in a frame. */
constexpr std::uint32_t kMaxSteps = 1u << 20;

/** Columns of the per-shard stats matrix a Stats response returns. */
constexpr std::size_t kShardStatsCols = 14;

/** Column indices of the Stats response matrix (one row per shard). */
enum ShardStatsCol : std::size_t
{
    kStatRequests = 0,   //!< requests the shard's Server accepted
    kStatLanes = 1,      //!< engine lanes of real work
    kStatPaddedLanes = 2, //!< lanes after 64-lane padding
    kStatGroups = 3,     //!< batched groups executed
    kStatSequences = 4,  //!< EsnSequence jobs executed
    kStatSubmitted = 5,  //!< wire requests admitted to this shard
    kStatShed = 6,       //!< wire requests shed with Status::Busy
    kStatInFlight = 7,   //!< admitted-but-unanswered requests now
    kStatStoreHits = 8,  //!< design-store hot-tier hits
    kStatStoreMisses = 9, //!< design-store misses (compiled or loaded)
    kStatStorePromotions = 10, //!< misses served from the cold tier
    kStatStoreDemotions = 11,  //!< evictions spilled to the cold tier
    kStatWatchdogShed = 12,    //!< requests shed by the queue-age watchdog
    kStatFaultsInjected = 13,  //!< injected faults observed by the shard
};

/** What a request frame asks the server to do. */
enum class MessageKind : std::uint8_t
{
    /** Compile and admit a design; the response assigns its id. */
    RegisterDesign = 1,
    /** One o = x^T V (maps to RequestKind::Gemv). */
    Gemv = 2,
    /** A pre-batched GEMV block (RequestKind::GemvBatch). */
    GemvBatch = 3,
    /** One integer-ESN update (RequestKind::EsnStep). */
    EsnStep = 4,
    /** A T-step ESN trajectory (RequestKind::EsnSequence). */
    EsnSequence = 5,
    /** Liveness probe; empty body both ways. */
    Ping = 6,
    /** Per-shard server counters as an i64 matrix (kShardStatsCols). */
    Stats = 7,
};

/** Printable kind name for logs and tests. */
const char *messageKindName(MessageKind kind);

/** Outcome code carried in every response header. */
enum class Status : std::uint8_t
{
    Ok = 0,            //!< request executed; body carries the result
    Busy = 1,          //!< shed by admission control; retry later
    BadFrame = 2,      //!< unparseable frame; the connection is closed
    BadVersion = 3,    //!< header version != kVersion
    BadRequest = 4,    //!< well-formed but invalid (shape, range)
    UnknownDesign = 5, //!< design id was never registered
    ShuttingDown = 6,  //!< server is draining; no new work accepted
    Internal = 7,      //!< server-side failure executing the request
    /** Client-side synthetic status: the per-request timeout expired
     * before a response arrived (NetClientOptions::requestTimeout).
     * Never sent on the wire. */
    TimedOut = 254,
    /** Client-side synthetic status: the connection dropped before a
     * response arrived.  Never sent on the wire. */
    Disconnected = 255,
};

/** Printable status name for logs and tests. */
const char *statusName(Status status);

/** One decoded request frame (kind-specific members left default). */
struct RequestFrame
{
    /** What the frame asks for. */
    MessageKind kind = MessageKind::Ping;

    /** Client-chosen correlation id, echoed in the response. */
    std::uint64_t requestId = 0;

    /** Target design id (ignored by RegisterDesign/Ping/Stats). */
    std::uint32_t designId = 0;

    /** Gemv/GemvBatch/EsnStep/EsnSequence: the decoded request. */
    Request request;

    /** RegisterDesign: the weight matrix to compile. */
    IntMatrix weights;

    /** RegisterDesign: the compile options. */
    core::CompileOptions compile;
};

/** One decoded response frame. */
struct ResponseFrame
{
    /** Outcome of the correlated request. */
    Status status = Status::Ok;

    /** Kind of the request this responds to (echoed). */
    MessageKind kind = MessageKind::Ping;

    /** The request's correlation id (echoed). */
    std::uint64_t requestId = 0;

    /**
     * RegisterDesign: the assigned design id.  Request kinds: echo of
     * the target design id.
     */
    std::uint32_t designId = 0;

    /**
     * Result payload, present only when status == Ok: the output
     * matrix for compute kinds, a 1x1 [shard] matrix for
     * RegisterDesign, the per-shard counter matrix for Stats, and
     * empty (0x0) for Ping.
     */
    IntMatrix output;
};

/** Append one encoded request frame (length prefix included). */
void appendRequestFrame(std::vector<std::uint8_t> &out,
                        const RequestFrame &frame);

/** Append one encoded response frame (length prefix included). */
void appendResponseFrame(std::vector<std::uint8_t> &out,
                         const ResponseFrame &frame);

/** Outcome of looking for one complete frame in a byte stream. */
enum class FrameResult : std::uint8_t
{
    Ok = 0,       //!< a complete frame is available
    NeedMore = 1, //!< the stream holds only a frame prefix so far
    Malformed = 2, //!< the length prefix itself is invalid
};

/**
 * Inspect the start of a byte stream for one frame.  On Ok,
 * `*payload_offset` / `*payload_size` locate the payload and
 * `*frame_size` is the total bytes to consume (prefix + payload).  On
 * NeedMore nothing is written.  On Malformed (payload length below the
 * header size or above `max_payload`) the stream is unrecoverable —
 * framing is lost — and the connection should be dropped after an
 * error response.  `max_payload` lets a server cap inbound frames
 * below the protocol maximum (NetServerOptions::maxFrameBytes); it is
 * clamped to kMaxFrameBytes.
 */
FrameResult peekFrame(const std::uint8_t *data, std::size_t size,
                      std::size_t *payload_offset,
                      std::size_t *payload_size,
                      std::size_t *frame_size,
                      std::uint32_t max_payload = kMaxFrameBytes);

/**
 * Decode one request payload (the bytes after the length prefix).
 * Returns Ok and fills `*frame`, or a Status error (BadFrame,
 * BadVersion, BadRequest) without touching bytes past `size`.
 */
Status decodeRequest(const std::uint8_t *payload, std::size_t size,
                     RequestFrame *frame);

/**
 * Decode one response payload.  Returns Ok (including responses whose
 * carried status is an error — that status is in `frame->status`) or
 * BadFrame/BadVersion when the payload itself is malformed.
 */
Status decodeResponse(const std::uint8_t *payload, std::size_t size,
                      ResponseFrame *frame);

/**
 * Shared shape/range validation of a decoded compute request against
 * its design's dimensions — the same checks Server::submit makes
 * fatally, returned as a wire status so a network peer cannot crash
 * the server: vector lengths vs rows, inject widths vs cols, the
 * square-design requirement of EsnSequence, postShift/stateBits
 * ranges, and non-empty GemvBatch blocks.
 */
Status validateRequest(const Request &request, std::size_t rows,
                       std::size_t cols);

} // namespace wire

} // namespace spatial::serve

#endif // SPATIAL_SERVE_WIRE_H
