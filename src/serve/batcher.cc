#include "serve/batcher.h"

#include <algorithm>

#include "common/logging.h"

namespace spatial::serve
{

Batcher::Batcher(DesignId design, BatchPolicy policy)
    : design_(design), policy_(policy)
{
    policy_.maxBatch = std::max<std::size_t>(1, policy_.maxBatch);
}

Group
Batcher::cut(FlushReason reason, std::chrono::time_point<Clock> now)
{
    Group group;
    group.design = design_;
    group.requests = std::move(pending_);
    group.lanes = pendingLanes_;
    group.reason = reason;
    group.flushAt = now;
    pending_.clear();
    pendingLanes_ = 0;
    return group;
}

std::vector<Group>
Batcher::enqueue(PendingRequest pending, std::chrono::time_point<Clock> now)
{
    SPATIAL_ASSERT(pending.request.kind != RequestKind::EsnSequence,
                   "sequences bypass the batcher");
    std::vector<Group> flushed;
    const std::size_t lanes = pending.request.lanes();

    // An incoming request never splits across groups: if it would
    // overflow the open group, that group ships first.
    if (pendingLanes_ > 0 && pendingLanes_ + lanes > policy_.maxBatch)
        flushed.push_back(cut(FlushReason::Full, now));

    // The group's deadline counts from when it opens, not from when its
    // first request was submitted: a request that already waited in the
    // server queue longer than maxDelay would otherwise open a group
    // that is born expired and flush with a single lane.
    if (pending_.empty())
        deadline_ = std::max(pending.submitAt, now) + policy_.maxDelay;
    pendingLanes_ += lanes;
    pending_.push_back(std::move(pending));

    if (pendingLanes_ >= policy_.maxBatch)
        flushed.push_back(cut(FlushReason::Full, now));
    return flushed;
}

std::optional<Group>
Batcher::pollDeadline(std::chrono::time_point<Clock> now)
{
    if (pending_.empty() || now < deadline_)
        return std::nullopt;
    return cut(FlushReason::Deadline, now);
}

std::optional<Group>
Batcher::flush(FlushReason reason, std::chrono::time_point<Clock> now)
{
    if (pending_.empty())
        return std::nullopt;
    return cut(reason, now);
}

std::optional<std::chrono::time_point<Clock>>
Batcher::deadline() const
{
    if (pending_.empty())
        return std::nullopt;
    return deadline_;
}

} // namespace spatial::serve
