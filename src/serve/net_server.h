/**
 * @file
 * TCP front end of the serving layer: a poll()-driven accept+dispatch
 * loop feeding per-design shard routing across N engine pools.
 *
 * Architecture (one NetServer):
 *
 *  - **event loop** (one thread): accepts connections, reads bytes,
 *    extracts wire frames, validates them against the design table,
 *    applies admission control, and submits compute requests straight
 *    into the owning shard's in-process Server (submit is cheap — it
 *    only enqueues on a batcher).  Writes are buffered per connection
 *    and flushed as POLLOUT allows, so a slow reader never blocks the
 *    loop or other clients; a reader whose backlog crosses the buffer
 *    cap is dropped outright.  A peer that half-closes (shutdown(WR))
 *    keeps its connection until every reply it is owed has been
 *    delivered and flushed — the NetClient::close() drain contract.
 *  - **N shards**: each shard is a full serve::Server — its own
 *    DesignStore, Batcher set, deadline timer, and worker pool.
 *    Designs are routed to shard `globalId % shards` at registration,
 *    so one hot design's queue cannot starve another shard's pool.
 *  - **per-shard reaper** (one thread each): waits on submitted
 *    futures in FIFO order, encodes responses, and hands them back to
 *    the event loop through the connection write buffers.
 *  - **registrar** (one thread): runs RegisterDesign compiles off the
 *    event loop, so admission of a new design never stalls traffic.
 *    Every compile precondition is re-checked non-fatally first
 *    (core::MatrixCompiler::checkCompile), so a registration that
 *    would trip a compiler SPATIAL_FATAL is answered BadRequest
 *    instead — a network peer cannot terminate the process.
 *
 * Admission control: each shard counts admitted-but-unanswered
 * requests; once the count crosses NetServerOptions::maxQueue the
 * event loop sheds new work for that shard with Status::Busy instead
 * of queueing it — overload degrades to fast BUSY responses, not
 * latency collapse.  Graceful drain: shutdown() (or requestShutdown()
 * from a signal handler) stops accepting, answers new work with
 * ShuttingDown, completes everything already admitted, flushes the
 * write buffers, and joins every thread.
 */

#ifndef SPATIAL_SERVE_NET_SERVER_H
#define SPATIAL_SERVE_NET_SERVER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace spatial::serve
{

/** Configuration of one TCP serving front end. */
struct NetServerOptions
{
    /** Listen address (loopback by default; "0.0.0.0" for all). */
    std::string host = "127.0.0.1";

    /** Listen port; 0 binds an ephemeral port (see NetServer::port). */
    std::uint16_t port = 0;

    /** Engine-pool shards; designs route to shard `id % shards`. */
    std::size_t shards = 1;

    /**
     * Per-shard admission watermark: once this many admitted requests
     * are unanswered, new work for the shard is shed with
     * Status::Busy.  0 means unbounded (never shed).
     */
    std::size_t maxQueue = 1024;

    /**
     * Largest design dimension (rows or cols) a RegisterDesign is
     * admitted with; anything larger is answered Status::BadRequest
     * before it reaches the registrar.  The default covers the
     * large-matrix envelope (dim 8192, a 512 MiB dense weight frame);
     * 0 means unbounded (the frame cap still applies).
     */
    std::size_t maxRegisterDim = 8192;

    /**
     * Largest inbound frame payload accepted on a connection (bytes);
     * a length prefix above this is Malformed and drops the
     * connection.  Clamped to wire::kMaxFrameBytes.  The default
     * admits a dense maxRegisterDim registration.
     */
    std::uint32_t maxFrameBytes = wire::kMaxFrameBytes;

    /**
     * Deadline for the graceful drain: once shutdown() has waited
     * this long for admitted work to finish, the remaining in-flight
     * requests are abandoned and answered Status::ShuttingDown so the
     * process can exit promptly even with a wedged worker.  0 means
     * wait forever (the legacy drain contract).
     */
    std::chrono::milliseconds drainTimeout{0};

    /** Per-shard in-process Server configuration. */
    ServeOptions serve;
};

/** Point-in-time counters of one shard's wire traffic. */
struct ShardStats
{
    std::size_t submitted = 0; //!< wire requests admitted
    std::size_t shed = 0;      //!< wire requests answered Busy
    std::size_t inFlight = 0;  //!< admitted but not yet answered
    ServerStats server;        //!< the shard Server's own counters
};

/** Point-in-time counters of the whole front end. */
struct NetServerStats
{
    std::size_t accepted = 0;     //!< connections accepted
    std::size_t active = 0;       //!< connections currently open
    std::size_t badFrames = 0;    //!< malformed frames (conn dropped)
    std::size_t registered = 0;   //!< designs in the routing table
    std::vector<ShardStats> shards; //!< one entry per shard
};

/**
 * Network-attached serving front end over N sharded Servers.
 *
 * The constructor binds, listens, and starts every thread; port()
 * reports the resolved port (essential with port 0).  Thread-safe:
 * stats(), shutdown(), and requestShutdown() may be called from any
 * thread; requestShutdown() additionally from a signal handler.
 */
class NetServer
{
  public:
    /** Bind + listen + start the loop, shards, reapers, registrar. */
    explicit NetServer(NetServerOptions options = {});

    /** Graceful shutdown (idempotent), then join everything. */
    ~NetServer();

    /** Non-copyable: owns sockets and threads. */
    NetServer(const NetServer &) = delete;
    /** Non-assignable (same reason). */
    NetServer &operator=(const NetServer &) = delete;

    /** The resolved listen port (after binding port 0). */
    std::uint16_t port() const { return port_; }

    /** The configured options (shards/maxQueue after clamping). */
    const NetServerOptions &options() const { return options_; }

    /**
     * Async-signal-safe shutdown trigger: flags the event loop through
     * the wake pipe.  The actual drain runs on the caller of
     * shutdown()/waitUntilStopped()/the destructor.
     */
    void requestShutdown();

    /**
     * Graceful drain: stop accepting, answer new work ShuttingDown,
     * finish everything admitted, flush responses, join all threads.
     * Idempotent; concurrent callers block until the drain completes.
     */
    void shutdown();

    /**
     * Block until requestShutdown() fires (e.g. from a SIGTERM
     * handler), then perform the graceful shutdown() and return.
     */
    void waitUntilStopped();

    /** Counters across the loop and every shard. */
    NetServerStats stats() const;

  private:
    /** One registered design's routing entry. */
    struct DesignRoute
    {
        std::size_t shard = 0;   //!< owning shard
        DesignId localId = 0;    //!< id inside the shard's Server
        std::size_t rows = 0;    //!< design rows (request validation)
        std::size_t cols = 0;    //!< design cols
        bool ready = false;      //!< registrar finished compiling
        bool failed = false;     //!< registrar rejected the compile
    };

    /** A submitted request awaiting its future, FIFO per shard. */
    struct PendingReply
    {
        std::uint64_t conn = 0;
        std::uint64_t requestId = 0;
        std::uint32_t designId = 0;
        wire::MessageKind kind = wire::MessageKind::Ping;
        std::future<Response> future;
    };

    /** One shard: a Server plus its completion plumbing. */
    struct Shard
    {
        std::unique_ptr<Server> server;
        Mutex mutex;
        CondVar cv;
        std::deque<PendingReply> completions SPATIAL_GUARDED_BY(mutex);
        bool stop SPATIAL_GUARDED_BY(mutex) = false;
        /** Drain deadline expired: the reaper stops waiting on
         * futures and answers everything left ShuttingDown. */
        std::atomic<bool> abandon{false};
        std::atomic<std::size_t> inFlight{0};
        std::atomic<std::size_t> submitted{0};
        std::atomic<std::size_t> shed{0};
        std::thread reaper;
    };

    /** A RegisterDesign job for the registrar thread. */
    struct RegisterJob
    {
        std::uint64_t conn = 0;
        std::uint64_t requestId = 0;
        std::uint32_t designId = 0; //!< pre-assigned global id
        IntMatrix weights;
        core::CompileOptions compile;
    };

    /**
     * Per-connection buffers; owned by the connection table.  `fd` and
     * `in` are touched by the event loop alone; `out`, `outSent`,
     * `closing`, `peerEof`, and `pendingReplies` are shared with the
     * reaper/registrar reply paths and guarded by connMutex_.
     */
    struct Connection
    {
        int fd = -1;
        std::vector<std::uint8_t> in;   //!< unparsed inbound bytes
        std::vector<std::uint8_t> out;  //!< unsent outbound bytes
        std::size_t outSent = 0;        //!< bytes of `out` written
        /** Protocol lost or unrecoverable slow reader: stop reading,
         * drop late replies, close as soon as `out` drains. */
        bool closing = false;
        /** Peer half-closed its send side: stop reading, but keep the
         * connection until every owed reply (pendingReplies) has been
         * queued and `out` has flushed — the NetClient::close()
         * contract. */
        bool peerEof = false;
        /** Admitted requests whose replies are still owed (shard
         * futures in flight plus queued RegisterDesign compiles). */
        std::size_t pendingReplies = 0;
    };

    void eventLoop();
    void reaperLoop(std::size_t shard);
    void registrarLoop();

    /** Parse and dispatch every complete frame in `conn`'s buffer. */
    void processInbound(std::uint64_t id, Connection &conn)
        SPATIAL_EXCLUDES(connMutex_);

    /** Route one decoded request frame (event-loop thread). */
    void dispatch(std::uint64_t conn, wire::RequestFrame frame)
        SPATIAL_EXCLUDES(designMutex_, registrarMutex_, connMutex_);

    /** Queue an error/headers-only response to a connection. */
    void replyStatus(std::uint64_t conn, wire::Status status,
                     wire::MessageKind kind, std::uint64_t request_id,
                     std::uint32_t design_id)
        SPATIAL_EXCLUDES(connMutex_);

    /** Queue a full response frame to a connection (any thread). */
    void replyFrame(std::uint64_t conn, const wire::ResponseFrame &f)
        SPATIAL_EXCLUDES(connMutex_);

    /** Record that `conn` is owed one more async reply (event loop). */
    void asyncBegin(std::uint64_t conn) SPATIAL_EXCLUDES(connMutex_);

    /** Record that one owed async reply was delivered (any thread). */
    void asyncDone(std::uint64_t conn) SPATIAL_EXCLUDES(connMutex_);

    /** Wake the poll loop (writable buffers or shutdown changed). */
    void wake();

    /** The per-shard stats matrix a Stats request returns. */
    IntMatrix statsMatrix() const;

    NetServerOptions options_;
    int listenFd_ = -1;
    int wakePipe_[2] = {-1, -1};
    std::uint16_t port_ = 0;

    std::vector<std::unique_ptr<Shard>> shards_;

    /** Routing table; guarded by designMutex_. */
    mutable Mutex designMutex_;
    std::vector<DesignRoute> designs_ SPATIAL_GUARDED_BY(designMutex_);
    std::unordered_map<experiments::DesignKey, std::uint32_t,
                       experiments::DesignKeyHash>
        designIds_ SPATIAL_GUARDED_BY(designMutex_);

    /** Registrar queue; guarded by registrarMutex_. */
    Mutex registrarMutex_;
    CondVar registrarCv_;
    std::deque<RegisterJob> registerQueue_
        SPATIAL_GUARDED_BY(registrarMutex_);
    bool registrarStop_ SPATIAL_GUARDED_BY(registrarMutex_) = false;

    /** Connection table and write buffers; guarded by connMutex_. */
    mutable Mutex connMutex_;
    std::unordered_map<std::uint64_t, Connection> conns_
        SPATIAL_GUARDED_BY(connMutex_);
    std::uint64_t nextConn_ SPATIAL_GUARDED_BY(connMutex_) = 1;

    std::atomic<std::size_t> accepted_{0};
    std::atomic<std::size_t> badFrames_{0};

    std::atomic<bool> shutdownRequested_{false};
    std::atomic<bool> rejecting_{false}; //!< answer new work ShuttingDown
    std::atomic<bool> loopExit_{false};  //!< event loop may drain+exit
    Mutex shutdownMutex_;
    CondVar shutdownCv_;
    bool shutdownDone_ SPATIAL_GUARDED_BY(shutdownMutex_) = false;
    bool shutdownRunning_ SPATIAL_GUARDED_BY(shutdownMutex_) = false;

    std::thread registrar_;
    std::thread loop_;
};

} // namespace spatial::serve

#endif // SPATIAL_SERVE_NET_SERVER_H
