#include "serve/server.h"

#include <algorithm>
#include <chrono>

#include "common/fault.h"
#include "common/logging.h"
#include "core/batch_engine.h"
#include "matrix/bits.h"

namespace spatial::serve
{

Server::Server(ServeOptions options)
    : options_(options),
      store_(StoreOptions{options.storeCapacity, options.storeSpillDir,
                          options.tile})
{
    options_.maxBatch = std::max<std::size_t>(1, options_.maxBatch);
    // Group execution forces threads = 1 (see executeGroup), so the
    // admission W must be resolved the same way.
    core::SimOptions admit_sim = options_.sim;
    admit_sim.threads = 1;
    store_.setJitAdmission(admit_sim, options_.maxBatch);
    unsigned workers = options_.workers != 0
                           ? options_.workers
                           : std::thread::hardware_concurrency();
    workers = std::max(1u, workers);
    options_.workers = workers;

    workerBusyUs_ =
        std::make_unique<std::atomic<std::int64_t>[]>(workers);
    for (unsigned i = 0; i < workers; ++i)
        workerBusyUs_[i].store(0, std::memory_order_relaxed);

    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
    timer_ = std::thread([this] { timerLoop(); });
    if (options_.maxQueueAge.count() > 0 ||
        options_.slowWorkerAfter.count() > 0)
        watchdog_ = std::thread([this] { watchdogLoop(); });
}

Server::~Server()
{
    drain();
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    timerCv_.notify_all();
    watchdogCv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
    timer_.join();
    if (watchdog_.joinable())
        watchdog_.join();
}

DesignId
Server::registerDesign(const IntMatrix &weights,
                       const core::CompileOptions &options)
{
    const auto key = experiments::makeDesignKey(weights, options);
    {
        MutexLock lock(mutex_);
        const auto it = designIds_.find(key);
        if (it != designIds_.end())
            return it->second;
    }
    // Materialize outside the scheduling lock; the store dedups
    // concurrent compilations of the same design (and reuses the key
    // computed above instead of re-hashing the matrix).  The returned
    // pointer is dropped on purpose: entries do not pin designs, the
    // tiered store owns residency.
    store_.get(key, weights, options);

    MutexLock lock(mutex_);
    const auto it = designIds_.find(key);
    if (it != designIds_.end())
        return it->second;
    const DesignId id = designs_.size();
    BatchPolicy policy{options_.maxBatch, options_.maxDelay};
    designs_.push_back(std::make_unique<DesignEntry>(
        id, key, weights, options, policy));
    designIds_.emplace(key, id);
    return id;
}

std::future<Response>
Server::submit(DesignId id, Request request)
{
    PendingRequest pending;
    pending.request = std::move(request);
    pending.submitAt = Clock::now();
    auto future = pending.promise.get_future();

    MutexLock lock(mutex_);
    if (id >= designs_.size())
        SPATIAL_FATAL("submit to unregistered design ", id);
    DesignEntry &entry = *designs_[id];
    const std::size_t rows = entry.weights.rows();
    const std::size_t cols = entry.weights.cols();
    const Request &req = pending.request;

    switch (req.kind) {
      case RequestKind::Gemv:
        if (req.vec.size() != rows)
            SPATIAL_FATAL("gemv input length ", req.vec.size(),
                          " != design rows ", rows);
        break;
      case RequestKind::GemvBatch:
        if (req.batch.rows() == 0 || req.batch.cols() != rows)
            SPATIAL_FATAL("gemv batch shape ", req.batch.rows(), "x",
                          req.batch.cols(), " vs design rows ", rows);
        break;
      case RequestKind::EsnStep:
        if (req.vec.size() != rows)
            SPATIAL_FATAL("esn state length ", req.vec.size(),
                          " != design rows ", rows);
        if (!req.inject.empty() && req.inject.size() != cols)
            SPATIAL_FATAL("esn inject length ", req.inject.size(),
                          " != design cols ", cols);
        break;
      case RequestKind::EsnSequence:
        if (rows != cols)
            SPATIAL_FATAL("esn sequence needs a square design, got ",
                          rows, "x", cols);
        if (req.vec.size() != rows)
            SPATIAL_FATAL("esn state length ", req.vec.size(),
                          " != design rows ", rows);
        if (req.injectSeq.rows() > 0 && req.injectSeq.cols() != cols)
            SPATIAL_FATAL("esn inject width ", req.injectSeq.cols(),
                          " != design cols ", cols);
        break;
    }
    if ((req.kind == RequestKind::EsnStep ||
         req.kind == RequestKind::EsnSequence) &&
        (req.postShift < 0 || req.postShift > 62 ||
         req.stateBits < 1 || req.stateBits > 62))
        SPATIAL_FATAL("esn postShift/stateBits out of range: ",
                      req.postShift, "/", req.stateBits);

    ++stats_.requests;

    if (req.kind == RequestKind::EsnSequence) {
        // Sequential job: no lanes to pack, straight to the scheduler.
        Group group;
        group.design = id;
        group.lanes = 0;
        group.reason = FlushReason::Direct;
        group.flushAt = pending.submitAt;
        group.requests.push_back(std::move(pending));
        std::vector<Group> direct;
        direct.push_back(std::move(group));
        pushGroupsLocked(std::move(direct));
    } else {
        auto flushed = entry.batcher.enqueue(std::move(pending),
                                             Clock::now());
        pushGroupsLocked(std::move(flushed));
        // The deadline horizon only moves when this enqueue opened a
        // fresh group (queue was empty, or an overflow flush left the
        // request alone); skip the timer wakeup otherwise.
        if (entry.batcher.pendingRequests() == 1)
            timerCv_.notify_one();
    }
    return future;
}

void
Server::pushGroupsLocked(std::vector<Group> groups)
{
    for (auto &group : groups) {
        switch (group.reason) {
          case FlushReason::Full:
            ++stats_.flushFull;
            break;
          case FlushReason::Deadline:
            ++stats_.flushDeadline;
            break;
          case FlushReason::Drain:
            ++stats_.flushDrain;
            break;
          case FlushReason::Direct:
            break;
        }
        designs_[group.design]->ready.push_back(std::move(group));
        ++readyGroups_;
    }
    if (!groups.empty())
        workCv_.notify_all();
}

std::optional<Group>
Server::popGroupLocked()
{
    if (readyGroups_ == 0 || designs_.empty())
        return std::nullopt;
    // Round-robin across designs: scan from the cursor, take the first
    // non-empty queue, and advance the cursor past it, so a design with
    // a deep backlog yields to its neighbours after every group.
    const std::size_t n = designs_.size();
    for (std::size_t offset = 0; offset < n; ++offset) {
        const std::size_t d = (rrCursor_ + offset) % n;
        auto &ready = designs_[d]->ready;
        if (ready.empty())
            continue;
        Group group = std::move(ready.front());
        ready.pop_front();
        --readyGroups_;
        rrCursor_ = (d + 1) % n;
        return group;
    }
    return std::nullopt;
}

void
Server::workerLoop(unsigned index)
{
    MutexLock lock(mutex_);
    for (;;) {
        while (readyGroups_ == 0 && !stopping_)
            workCv_.wait(mutex_);
        if (stopping_ && readyGroups_ == 0)
            return;
        auto group = popGroupLocked();
        if (!group)
            continue;
        ++inFlight_;
        // Materialize the design outside the lock: a hot design is a
        // map lookup; a demoted one reloads from the cold tier (or
        // recompiles).  The shared_ptr pins it across execution even
        // if the LRU demotes it meanwhile.
        DesignEntry &entry = *designs_[group->design];
        lock.unlock();
        workerBusyUs_[index].store(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now().time_since_epoch())
                .count(),
            std::memory_order_release);
        // Injection site: a stalled/slow worker holds its group for
        // `param` ms while the queue behind it ages — exactly what
        // the queue-age watchdog and the wire front end's shed path
        // are there to absorb.
        if (const std::uint64_t stall_ms = fault::injectFaultParam(
                fault::Site::ServeWorkerStall)) {
            workerFaults_.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(stall_ms));
        }
        auto design =
            store_.get(entry.key, entry.weights, entry.compile);
        if (!group->requests.empty() &&
            group->requests.front().request.kind ==
                RequestKind::EsnSequence)
            executeSequence(*design, std::move(*group));
        else
            executeGroup(*design, std::move(*group));
        workerBusyUs_[index].store(0, std::memory_order_release);
        lock.lock();
        --inFlight_;
        if (readyGroups_ == 0 && inFlight_ == 0)
            idleCv_.notify_all();
    }
}

void
Server::fulfillShed(std::vector<Group> shed)
{
    const auto done = Clock::now();
    for (auto &group : shed)
        for (auto &p : group.requests) {
            Response resp;
            resp.submitAt = p.submitAt;
            resp.flushAt = group.flushAt;
            resp.doneAt = done;
            resp.groupLanes =
                static_cast<std::uint32_t>(group.lanes);
            resp.flushReason = group.reason;
            resp.shed = true;
            p.promise.set_value(std::move(resp));
        }
}

void
Server::watchdogLoop()
{
    // Scan period: fine enough to catch expiry promptly, coarse
    // enough to stay invisible — a quarter of the tightest enabled
    // threshold, floored at 1ms.
    auto period = std::chrono::milliseconds::max();
    if (options_.maxQueueAge.count() > 0)
        period = std::min(period, options_.maxQueueAge);
    if (options_.slowWorkerAfter.count() > 0)
        period = std::min(period, options_.slowWorkerAfter);
    period = std::max(std::chrono::milliseconds(1), period / 4);

    std::vector<bool> flagged(options_.workers, false);
    MutexLock lock(mutex_);
    while (!stopping_) {
        watchdogCv_.wait_for(mutex_, period);
        if (stopping_)
            return;

        std::vector<Group> expired;
        if (options_.maxQueueAge.count() > 0) {
            const auto cutoff = Clock::now() - options_.maxQueueAge;
            for (const auto &entry : designs_) {
                auto &ready = entry->ready;
                // Ready queues are FIFO per design, so the front
                // group holds the oldest submit; stop at the first
                // young one.
                while (!ready.empty() &&
                       !ready.front().requests.empty() &&
                       ready.front().requests.front().submitAt <
                           cutoff) {
                    stats_.watchdogShed +=
                        ready.front().requests.size();
                    expired.push_back(std::move(ready.front()));
                    ready.pop_front();
                    --readyGroups_;
                }
            }
            if (!expired.empty() && readyGroups_ == 0 &&
                inFlight_ == 0)
                idleCv_.notify_all();
        }

        if (options_.slowWorkerAfter.count() > 0) {
            const std::int64_t now_us =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now().time_since_epoch())
                    .count();
            const std::int64_t limit_us =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    options_.slowWorkerAfter)
                    .count();
            for (unsigned w = 0; w < options_.workers; ++w) {
                const std::int64_t busy =
                    workerBusyUs_[w].load(std::memory_order_acquire);
                if (busy != 0 && now_us - busy > limit_us) {
                    // One flag per busy episode, not per scan.
                    if (!flagged[w]) {
                        flagged[w] = true;
                        ++stats_.slowWorkerFlags;
                        SPATIAL_WARN("serve: worker ", w,
                                     " busy on one group for ",
                                     (now_us - busy) / 1000, "ms");
                    }
                } else {
                    flagged[w] = false;
                }
            }
        }

        if (!expired.empty()) {
            lock.unlock();
            fulfillShed(std::move(expired));
            lock.lock();
        }
    }
}

void
Server::executeGroup(const core::TiledDesign &design, Group group)
{
    const std::size_t rows = design.rows();
    const std::size_t cols = design.cols();

    // Pad the group to the engine's 64-lane boundary; the zero lanes
    // are valid inputs and their outputs are simply dropped.
    const std::size_t padded = (group.lanes + 63) / 64 * 64;
    IntMatrix batch(padded, rows);
    std::size_t lane = 0;
    for (const auto &p : group.requests) {
        const Request &req = p.request;
        if (req.kind == RequestKind::GemvBatch) {
            for (std::size_t b = 0; b < req.batch.rows(); ++b, ++lane)
                for (std::size_t r = 0; r < rows; ++r)
                    batch.at(lane, r) = req.batch.at(b, r);
        } else {
            for (std::size_t r = 0; r < rows; ++r)
                batch.at(lane, r) = req.vec[r];
            ++lane;
        }
    }
    SPATIAL_ASSERT(lane == group.lanes, "lane accounting");

    // One worker, one group: intra-group threading would fight the
    // pool's group-level parallelism — except across tiles, where the
    // strips are independent and a multi-tile design would otherwise
    // serialize its strips on one core.  The engine sizes its
    // lane-words to the dispatched SIMD kernel and this group's padded
    // size, so a full 256-lane group is one AVX2 pass instead of four.
    core::SimOptions sim = options_.sim;
    sim.threads = design.tiled() ? options_.workers : 1;
    core::SimOptions pass_sim = sim;
    pass_sim.threads = 1;
    std::size_t passes = 0;
    for (std::size_t i = 0; i < design.tileCount(); ++i) {
        const std::size_t pass_lanes =
            64 * core::resolvedLaneWords(design.tile(i), pass_sim,
                                         padded);
        passes += (padded + pass_lanes - 1) / pass_lanes;
    }
    core::BatchStats engine_stats;
    const IntMatrix out =
        design.multiplyBatchWide(batch, sim, &engine_stats);

    // Book the group's counters before fulfilling any promise: a
    // client that synchronizes on its future must observe them.
    {
        MutexLock lock(mutex_);
        ++stats_.groups;
        stats_.lanes += group.lanes;
        stats_.paddedLanes += padded;
        stats_.enginePasses += passes;
        stats_.segmentsExecuted += engine_stats.segmentsExecuted;
        stats_.segmentsSkipped += engine_stats.segmentsSkipped;
        stats_.jitGroups += engine_stats.jitGroups;
        stats_.jitFallbackGroups += engine_stats.interpFallbackGroups;
    }

    const auto done = Clock::now();
    lane = 0;
    for (auto &p : group.requests) {
        const Request &req = p.request;
        Response resp;
        resp.submitAt = p.submitAt;
        resp.flushAt = group.flushAt;
        resp.doneAt = done;
        resp.groupLanes = static_cast<std::uint32_t>(group.lanes);
        resp.flushReason = group.reason;
        resp.segmentsExecuted = engine_stats.segmentsExecuted;
        resp.segmentsSkipped = engine_stats.segmentsSkipped;
        if (req.kind == RequestKind::GemvBatch) {
            resp.output = IntMatrix(req.batch.rows(), cols);
            for (std::size_t b = 0; b < req.batch.rows(); ++b, ++lane)
                for (std::size_t c = 0; c < cols; ++c)
                    resp.output.at(b, c) = out.at(lane, c);
        } else if (req.kind == RequestKind::EsnStep) {
            resp.output = IntMatrix(1, cols);
            for (std::size_t c = 0; c < cols; ++c) {
                const std::int64_t inj =
                    req.inject.empty() ? 0 : req.inject[c];
                resp.output.at(0, c) =
                    esnClipUpdate(out.at(lane, c) + inj, req.postShift,
                                  req.stateBits);
            }
            ++lane;
        } else {
            resp.output = IntMatrix(1, cols);
            for (std::size_t c = 0; c < cols; ++c)
                resp.output.at(0, c) = out.at(lane, c);
            ++lane;
        }
        p.promise.set_value(std::move(resp));
    }
}

void
Server::executeSequence(const core::TiledDesign &design, Group group)
{
    auto &p = group.requests.front();
    const Request &req = p.request;
    const std::size_t cols = design.cols();
    const std::size_t steps = req.injectSeq.rows();

    core::TiledGemv gemv(design, options_.sim);
    std::vector<std::int64_t> state = req.vec;
    std::vector<std::int64_t> product(cols);
    IntMatrix trajectory(steps, cols);
    for (std::size_t t = 0; t < steps; ++t) {
        gemv.multiplyInto(state, product);
        for (std::size_t c = 0; c < cols; ++c) {
            state[c] =
                esnClipUpdate(product[c] + req.injectSeq.at(t, c),
                              req.postShift, req.stateBits);
            trajectory.at(t, c) = state[c];
        }
    }

    const core::BatchStats seq_stats = gemv.engineStats();
    {
        MutexLock lock(mutex_);
        ++stats_.sequences;
        stats_.sequenceSteps += steps;
        stats_.segmentsExecuted += seq_stats.segmentsExecuted;
        stats_.segmentsSkipped += seq_stats.segmentsSkipped;
        stats_.jitGroups += seq_stats.jitGroups;
        stats_.jitFallbackGroups += seq_stats.interpFallbackGroups;
    }

    Response resp;
    resp.submitAt = p.submitAt;
    resp.flushAt = group.flushAt;
    resp.doneAt = Clock::now();
    resp.groupLanes = 1;
    resp.flushReason = FlushReason::Direct;
    resp.segmentsExecuted = seq_stats.segmentsExecuted;
    resp.segmentsSkipped = seq_stats.segmentsSkipped;
    resp.output = std::move(trajectory);
    p.promise.set_value(std::move(resp));
}

void
Server::timerLoop()
{
    MutexLock lock(mutex_);
    while (!stopping_) {
        // Earliest pending deadline across all batchers.
        std::optional<std::chrono::time_point<Clock>> earliest;
        for (const auto &entry : designs_) {
            const auto d = entry->batcher.deadline();
            if (d && (!earliest || *d < *earliest))
                earliest = d;
        }
        if (!earliest) {
            timerCv_.wait(mutex_);
            continue;
        }
        if (timerCv_.wait_until(mutex_, *earliest) ==
            std::cv_status::no_timeout)
            continue; // new submit or stop: recompute the horizon
        const auto now = Clock::now();
        std::vector<Group> expired;
        for (const auto &entry : designs_)
            if (auto group = entry->batcher.pollDeadline(now))
                expired.push_back(std::move(*group));
        pushGroupsLocked(std::move(expired));
    }
}

void
Server::flushAllLocked()
{
    const auto now = Clock::now();
    std::vector<Group> flushed;
    for (const auto &entry : designs_)
        if (auto group = entry->batcher.flush(FlushReason::Drain, now))
            flushed.push_back(std::move(*group));
    pushGroupsLocked(std::move(flushed));
}

void
Server::drain()
{
    MutexLock lock(mutex_);
    flushAllLocked();
    while (readyGroups_ != 0 || inFlight_ != 0)
        idleCv_.wait(mutex_);
}

bool
Server::drainFor(std::chrono::milliseconds timeout)
{
    const auto deadline = Clock::now() + timeout;
    MutexLock lock(mutex_);
    flushAllLocked();
    while (readyGroups_ != 0 || inFlight_ != 0) {
        if (idleCv_.wait_until(mutex_, deadline) ==
                std::cv_status::timeout &&
            (readyGroups_ != 0 || inFlight_ != 0))
            return false;
    }
    return true;
}

ServerStats
Server::stats() const
{
    ServerStats stats;
    {
        MutexLock lock(mutex_);
        stats = stats_;
    }
    stats.store = store_.stats();
    stats.faultsInjected =
        workerFaults_.load(std::memory_order_relaxed) +
        stats.store.faultsInjected;
    return stats;
}

std::shared_ptr<const core::TiledDesign>
Server::design(DesignId id)
{
    DesignEntry *entry = nullptr;
    {
        MutexLock lock(mutex_);
        if (id >= designs_.size())
            SPATIAL_FATAL("unknown design ", id);
        entry = designs_[id].get();
    }
    // Outside the lock: may hit the cold tier or recompile.
    return store_.get(entry->key, entry->weights, entry->compile);
}

std::size_t
Server::designCount() const
{
    MutexLock lock(mutex_);
    return designs_.size();
}

} // namespace spatial::serve
