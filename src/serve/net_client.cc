#include "serve/net_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace spatial::serve
{

void
parseEndpoint(const std::string &endpoint, std::string *host,
              std::uint16_t *port)
{
    const std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == endpoint.size())
        SPATIAL_FATAL("endpoint '", endpoint,
                      "' is not of the form host:port");
    *host = endpoint.substr(0, colon);
    char *end = nullptr;
    const long value =
        std::strtol(endpoint.c_str() + colon + 1, &end, 10);
    if (*end != '\0' || value <= 0 || value > 65535)
        SPATIAL_FATAL("endpoint '", endpoint, "' has a bad port");
    *port = static_cast<std::uint16_t>(value);
}

NetClient::NetClient(const std::string &host, std::uint16_t port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        SPATIAL_FATAL("socket(): ", std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        SPATIAL_FATAL("bad address '", host, "'");
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        SPATIAL_FATAL("connect(", host, ":", port,
                      "): ", std::strerror(errno));
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connected_.store(true, std::memory_order_release);
    reader_ = std::thread([this] { readerLoop(); });
}

NetClient::~NetClient()
{
    close();
    if (reader_.joinable())
        reader_.join();
    if (fd_ >= 0)
        ::close(fd_);
}

bool
NetClient::connected() const
{
    return connected_.load(std::memory_order_acquire);
}

void
NetClient::close()
{
    if (!connected_.exchange(false))
        return;
    // Half-close our direction: the server sees EOF, finishes what it
    // owes us, and the reader drains the remaining responses until the
    // server closes its side too.
    ::shutdown(fd_, SHUT_WR);
}

void
NetClient::failAll()
{
    std::unordered_map<std::uint64_t, Pending> orphans;
    {
        MutexLock lock(pendingMutex_);
        orphans.swap(pending_);
    }
    for (auto &[id, pending] : orphans) {
        RemoteResult result;
        result.status = wire::Status::Disconnected;
        result.submitAt = pending.submitAt;
        result.doneAt = Clock::now();
        pending.promise.set_value(std::move(result));
    }
}

bool
NetClient::sendFrame(const wire::RequestFrame &frame)
{
    std::vector<std::uint8_t> bytes;
    wire::appendRequestFrame(bytes, frame);
    MutexLock lock(sendMutex_);
    if (!connected())
        return false;
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd_, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            connected_.store(false, std::memory_order_release);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::future<RemoteResult>
NetClient::submit(std::uint32_t design, Request request)
{
    wire::RequestFrame frame;
    switch (request.kind) {
      case RequestKind::Gemv:
        frame.kind = wire::MessageKind::Gemv;
        break;
      case RequestKind::GemvBatch:
        frame.kind = wire::MessageKind::GemvBatch;
        break;
      case RequestKind::EsnStep:
        frame.kind = wire::MessageKind::EsnStep;
        break;
      case RequestKind::EsnSequence:
        frame.kind = wire::MessageKind::EsnSequence;
        break;
    }
    frame.designId = design;
    frame.requestId = nextId_.fetch_add(1, std::memory_order_relaxed);
    frame.request = std::move(request);

    Pending pending;
    pending.submitAt = Clock::now();
    auto future = pending.promise.get_future();
    {
        MutexLock lock(pendingMutex_);
        pending_.emplace(frame.requestId, std::move(pending));
    }
    if (!sendFrame(frame)) {
        // Resolve immediately: the reader may already be gone.
        MutexLock lock(pendingMutex_);
        const auto it = pending_.find(frame.requestId);
        if (it != pending_.end()) {
            RemoteResult result;
            result.status = wire::Status::Disconnected;
            result.submitAt = it->second.submitAt;
            result.doneAt = Clock::now();
            it->second.promise.set_value(std::move(result));
            pending_.erase(it);
        }
    }
    return future;
}

RemoteResult
NetClient::roundTrip(wire::RequestFrame frame)
{
    frame.requestId = nextId_.fetch_add(1, std::memory_order_relaxed);
    Pending pending;
    pending.submitAt = Clock::now();
    auto future = pending.promise.get_future();
    {
        MutexLock lock(pendingMutex_);
        pending_.emplace(frame.requestId, std::move(pending));
    }
    if (!sendFrame(frame)) {
        MutexLock lock(pendingMutex_);
        const auto it = pending_.find(frame.requestId);
        if (it != pending_.end()) {
            RemoteResult result;
            result.status = wire::Status::Disconnected;
            it->second.promise.set_value(std::move(result));
            pending_.erase(it);
        }
    }
    return future.get();
}

wire::Status
NetClient::registerDesign(const IntMatrix &weights,
                          const core::CompileOptions &compile,
                          std::uint32_t *id, std::uint32_t *shard)
{
    wire::RequestFrame frame;
    frame.kind = wire::MessageKind::RegisterDesign;
    frame.weights = weights;
    frame.compile = compile;
    RemoteResult result = roundTrip(std::move(frame));
    if (result.status != wire::Status::Ok)
        return result.status;
    // The reader stashed the assigned id in output (see readerLoop):
    // [0,0] = design id, [0,1] = shard.
    if (result.output.rows() != 1 || result.output.cols() != 2)
        return wire::Status::BadFrame;
    *id = static_cast<std::uint32_t>(result.output.at(0, 0));
    if (shard != nullptr)
        *shard = static_cast<std::uint32_t>(result.output.at(0, 1));
    return wire::Status::Ok;
}

wire::Status
NetClient::ping()
{
    wire::RequestFrame frame;
    frame.kind = wire::MessageKind::Ping;
    return roundTrip(std::move(frame)).status;
}

wire::Status
NetClient::fetchStats(IntMatrix *out)
{
    wire::RequestFrame frame;
    frame.kind = wire::MessageKind::Stats;
    RemoteResult result = roundTrip(std::move(frame));
    if (result.status == wire::Status::Ok)
        *out = std::move(result.output);
    return result.status;
}

void
NetClient::readerLoop()
{
    std::vector<std::uint8_t> buffer;
    std::uint8_t chunk[64 * 1024];
    for (;;) {
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        buffer.insert(buffer.end(), chunk, chunk + n);

        std::size_t consumed = 0;
        bool fatal = false;
        for (;;) {
            std::size_t off = 0, size = 0, total = 0;
            const wire::FrameResult r =
                wire::peekFrame(buffer.data() + consumed,
                                buffer.size() - consumed, &off, &size,
                                &total);
            if (r == wire::FrameResult::NeedMore)
                break;
            if (r == wire::FrameResult::Malformed) {
                fatal = true;
                break;
            }
            wire::ResponseFrame frame;
            const wire::Status decoded = wire::decodeResponse(
                buffer.data() + consumed + off, size, &frame);
            consumed += total;
            if (decoded != wire::Status::Ok) {
                fatal = true;
                break;
            }
            Pending pending;
            bool found = false;
            {
                MutexLock lock(pendingMutex_);
                const auto it = pending_.find(frame.requestId);
                if (it != pending_.end()) {
                    pending = std::move(it->second);
                    pending_.erase(it);
                    found = true;
                }
            }
            if (!found)
                continue; // unsolicited; ignore
            RemoteResult result;
            result.status = frame.status;
            result.submitAt = pending.submitAt;
            result.doneAt = Clock::now();
            if (frame.kind == wire::MessageKind::RegisterDesign &&
                frame.status == wire::Status::Ok) {
                // Normalize the register reply for registerDesign():
                // [design id, shard] in one row.
                IntMatrix info(1, 2);
                info.at(0, 0) =
                    static_cast<std::int64_t>(frame.designId);
                info.at(0, 1) = frame.output.size() == 1
                                    ? frame.output.at(0, 0)
                                    : 0;
                result.output = std::move(info);
            } else {
                result.output = std::move(frame.output);
            }
            pending.promise.set_value(std::move(result));
        }
        if (consumed > 0)
            buffer.erase(buffer.begin(),
                         buffer.begin() +
                             static_cast<std::ptrdiff_t>(consumed));
        if (fatal)
            break;
    }
    connected_.store(false, std::memory_order_release);
    failAll();
}

} // namespace spatial::serve
