#include "serve/net_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"

namespace spatial::serve
{

namespace
{

/**
 * Open a blocking TCP connection; returns -1 on failure when
 * `fatal` is false (the reconnect path — failure is expected there).
 */
int
openSocket(const std::string &host, std::uint16_t port, bool fatal)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (fatal)
            SPATIAL_FATAL("socket(): ", std::strerror(errno));
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        if (fatal)
            SPATIAL_FATAL("bad address '", host, "'");
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        if (fatal)
            SPATIAL_FATAL("connect(", host, ":", port,
                          "): ", std::strerror(errno));
        return -1;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

} // namespace

void
parseEndpoint(const std::string &endpoint, std::string *host,
              std::uint16_t *port)
{
    const std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == endpoint.size())
        SPATIAL_FATAL("endpoint '", endpoint,
                      "' is not of the form host:port");
    *host = endpoint.substr(0, colon);
    char *end = nullptr;
    const long value =
        std::strtol(endpoint.c_str() + colon + 1, &end, 10);
    if (*end != '\0' || value <= 0 || value > 65535)
        SPATIAL_FATAL("endpoint '", endpoint, "' has a bad port");
    *port = static_cast<std::uint16_t>(value);
}

std::chrono::milliseconds
jitteredBackoff(unsigned attempt, std::chrono::milliseconds base,
                std::chrono::milliseconds cap, Rng &rng)
{
    const double base_ms =
        static_cast<double>(std::max<std::int64_t>(1, base.count()));
    const double cap_ms = std::max(
        base_ms, static_cast<double>(std::max<std::int64_t>(
                     1, cap.count())));
    // base << attempt, computed in doubles so a huge attempt count
    // saturates at the cap instead of overflowing.
    const double nominal =
        std::min(cap_ms, std::ldexp(base_ms, std::min(attempt, 40u)));
    const double jittered =
        std::min(cap_ms, nominal * rng.uniformReal(0.5, 1.5));
    return std::chrono::milliseconds(
        std::max<std::int64_t>(1, std::llround(jittered)));
}

NetClient::NetClient(const std::string &host, std::uint16_t port,
                     NetClientOptions options)
    : host_(host), port_(port), options_(options)
{
    fd_.store(openSocket(host, port, /*fatal=*/true),
              std::memory_order_release);
    connected_.store(true, std::memory_order_release);
    reader_ = std::thread([this] { readerLoop(); });
    if (options_.requestTimeout.count() > 0)
        timeout_ = std::thread([this] { timeoutLoop(); });
}

NetClient::~NetClient()
{
    close();
    if (reader_.joinable())
        reader_.join();
    {
        MutexLock lock(pendingMutex_);
        timeoutStop_ = true;
    }
    timeoutCv_.notify_all();
    if (timeout_.joinable())
        timeout_.join();
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd >= 0)
        ::close(fd);
}

bool
NetClient::connected() const
{
    return connected_.load(std::memory_order_acquire);
}

NetClientStats
NetClient::stats() const
{
    NetClientStats stats;
    stats.timeouts = timeouts_.load(std::memory_order_relaxed);
    stats.reconnects = reconnects_.load(std::memory_order_relaxed);
    stats.replays = replays_.load(std::memory_order_relaxed);
    return stats;
}

void
NetClient::close()
{
    // Order matters: the reader checks closing_ before redialing, so
    // setting it first guarantees no reconnect races past a close.
    closing_.store(true, std::memory_order_release);
    // The descriptor swap and the connected_ flip both happen under
    // sendMutex_ in the reconnect path, so taking it here makes this
    // atomic with respect to a reconnect: either we shut down the
    // (possibly fresh) live socket, or the reader sees closing_ and
    // never installs one.
    MutexLock lock(sendMutex_);
    if (!connected_.exchange(false))
        return;
    // Half-close our direction: the server sees EOF, finishes what it
    // owes us, and the reader drains the remaining responses until the
    // server closes its side too.
    ::shutdown(fd_.load(std::memory_order_acquire), SHUT_WR);
}

void
NetClient::failAll()
{
    std::unordered_map<std::uint64_t, Pending> orphans;
    {
        MutexLock lock(pendingMutex_);
        orphans.swap(pending_);
    }
    for (auto &[id, pending] : orphans) {
        RemoteResult result;
        result.status = wire::Status::Disconnected;
        result.submitAt = pending.submitAt;
        result.doneAt = Clock::now();
        pending.promise.set_value(std::move(result));
    }
}

bool
NetClient::sendBytes(const std::vector<std::uint8_t> &bytes)
{
    MutexLock lock(sendMutex_);
    if (!connected())
        return false;
    const int fd = fd_.load(std::memory_order_acquire);
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            connected_.store(false, std::memory_order_release);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::future<RemoteResult>
NetClient::enqueueAndSend(wire::RequestFrame frame, bool applyTimeout)
{
    frame.requestId = nextId_.fetch_add(1, std::memory_order_relaxed);
    auto bytes = std::make_shared<std::vector<std::uint8_t>>();
    wire::appendRequestFrame(*bytes, frame);

    Pending pending;
    pending.submitAt = Clock::now();
    if (applyTimeout && options_.requestTimeout.count() > 0)
        pending.deadline = pending.submitAt + options_.requestTimeout;
    if (options_.maxReconnects > 0)
        pending.frame = bytes;
    auto future = pending.promise.get_future();
    {
        MutexLock lock(pendingMutex_);
        pending_.emplace(frame.requestId, std::move(pending));
    }
    if (!sendBytes(*bytes)) {
        // With a reconnect budget and a live reader, leave the entry
        // in place: the reader will redial and replay it.  Otherwise
        // resolve here — the reader may already be gone.
        MutexLock lock(pendingMutex_);
        if (options_.maxReconnects == 0 || !readerActive_) {
            const auto it = pending_.find(frame.requestId);
            if (it != pending_.end()) {
                RemoteResult result;
                result.status = wire::Status::Disconnected;
                result.submitAt = it->second.submitAt;
                result.doneAt = Clock::now();
                it->second.promise.set_value(std::move(result));
                pending_.erase(it);
            }
        }
    }
    return future;
}

std::future<RemoteResult>
NetClient::submit(std::uint32_t design, Request request)
{
    wire::RequestFrame frame;
    switch (request.kind) {
      case RequestKind::Gemv:
        frame.kind = wire::MessageKind::Gemv;
        break;
      case RequestKind::GemvBatch:
        frame.kind = wire::MessageKind::GemvBatch;
        break;
      case RequestKind::EsnStep:
        frame.kind = wire::MessageKind::EsnStep;
        break;
      case RequestKind::EsnSequence:
        frame.kind = wire::MessageKind::EsnSequence;
        break;
    }
    frame.designId = design;
    frame.request = std::move(request);
    return enqueueAndSend(std::move(frame), /*applyTimeout=*/true);
}

RemoteResult
NetClient::submitRetry(std::uint32_t design, const Request &request,
                       unsigned maxAttempts)
{
    maxAttempts = std::max(1u, maxAttempts);
    // A private jitter stream per call: decorrelates concurrent
    // retriers while staying reproducible for a fixed seed and
    // submission order.
    Rng rng(options_.backoffSeed ^
            (nextId_.load(std::memory_order_relaxed) *
             0x9e3779b97f4a7c15ULL));
    RemoteResult result;
    for (unsigned attempt = 0;; ++attempt) {
        result = submit(design, Request(request)).get();
        const bool retryable =
            result.status == wire::Status::Busy ||
            result.status == wire::Status::TimedOut;
        if (!retryable || attempt + 1 >= maxAttempts)
            return result;
        std::this_thread::sleep_for(
            jitteredBackoff(attempt, options_.backoffBase,
                            options_.backoffCap, rng));
    }
}

RemoteResult
NetClient::roundTrip(wire::RequestFrame frame)
{
    return enqueueAndSend(std::move(frame), /*applyTimeout=*/false)
        .get();
}

wire::Status
NetClient::registerDesign(const IntMatrix &weights,
                          const core::CompileOptions &compile,
                          std::uint32_t *id, std::uint32_t *shard)
{
    wire::RequestFrame frame;
    frame.kind = wire::MessageKind::RegisterDesign;
    frame.weights = weights;
    frame.compile = compile;
    RemoteResult result = roundTrip(std::move(frame));
    if (result.status != wire::Status::Ok)
        return result.status;
    // The reader stashed the assigned id in output (see runReader):
    // [0,0] = design id, [0,1] = shard.
    if (result.output.rows() != 1 || result.output.cols() != 2)
        return wire::Status::BadFrame;
    *id = static_cast<std::uint32_t>(result.output.at(0, 0));
    if (shard != nullptr)
        *shard = static_cast<std::uint32_t>(result.output.at(0, 1));
    return wire::Status::Ok;
}

wire::Status
NetClient::ping()
{
    wire::RequestFrame frame;
    frame.kind = wire::MessageKind::Ping;
    return roundTrip(std::move(frame)).status;
}

wire::Status
NetClient::fetchStats(IntMatrix *out)
{
    wire::RequestFrame frame;
    frame.kind = wire::MessageKind::Stats;
    RemoteResult result = roundTrip(std::move(frame));
    if (result.status == wire::Status::Ok)
        *out = std::move(result.output);
    return result.status;
}

void
NetClient::replayPending()
{
    // Snapshot the outstanding frames; ids are monotonic, so sorting
    // by id replays in the original submit order.
    std::vector<std::pair<
        std::uint64_t, std::shared_ptr<const std::vector<std::uint8_t>>>>
        frames;
    {
        MutexLock lock(pendingMutex_);
        frames.reserve(pending_.size());
        for (const auto &[id, pending] : pending_)
            if (pending.frame != nullptr)
                frames.emplace_back(id, pending.frame);
    }
    std::sort(frames.begin(), frames.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (const auto &[id, bytes] : frames) {
        if (!sendBytes(*bytes))
            return; // connection died again; the next redial retries
        replays_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
NetClient::runReader()
{
    const int fd = fd_.load(std::memory_order_acquire);
    std::vector<std::uint8_t> buffer;
    std::uint8_t chunk[64 * 1024];
    for (;;) {
        // Injection site: a stalled reader — the client stops
        // draining its socket while the server keeps answering,
        // filling the server's per-connection out buffer.
        if (const std::uint64_t stall_ms = fault::injectFaultParam(
                fault::Site::ClientReadStall))
            std::this_thread::sleep_for(
                std::chrono::milliseconds(stall_ms));
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return;
        buffer.insert(buffer.end(), chunk, chunk + n);

        std::size_t consumed = 0;
        bool fatal = false;
        for (;;) {
            std::size_t off = 0, size = 0, total = 0;
            const wire::FrameResult r =
                wire::peekFrame(buffer.data() + consumed,
                                buffer.size() - consumed, &off, &size,
                                &total);
            if (r == wire::FrameResult::NeedMore)
                break;
            if (r == wire::FrameResult::Malformed) {
                fatal = true;
                break;
            }
            wire::ResponseFrame frame;
            const wire::Status decoded = wire::decodeResponse(
                buffer.data() + consumed + off, size, &frame);
            consumed += total;
            if (decoded != wire::Status::Ok) {
                fatal = true;
                break;
            }
            Pending pending;
            bool found = false;
            {
                MutexLock lock(pendingMutex_);
                const auto it = pending_.find(frame.requestId);
                if (it != pending_.end()) {
                    pending = std::move(it->second);
                    pending_.erase(it);
                    found = true;
                }
            }
            if (!found)
                continue; // unsolicited, or timed out meanwhile; drop
            RemoteResult result;
            result.status = frame.status;
            result.submitAt = pending.submitAt;
            result.doneAt = Clock::now();
            if (frame.kind == wire::MessageKind::RegisterDesign &&
                frame.status == wire::Status::Ok) {
                // Normalize the register reply for registerDesign():
                // [design id, shard] in one row.
                IntMatrix info(1, 2);
                info.at(0, 0) =
                    static_cast<std::int64_t>(frame.designId);
                info.at(0, 1) = frame.output.size() == 1
                                    ? frame.output.at(0, 0)
                                    : 0;
                result.output = std::move(info);
            } else {
                result.output = std::move(frame.output);
            }
            pending.promise.set_value(std::move(result));
        }
        if (consumed > 0)
            buffer.erase(buffer.begin(),
                         buffer.begin() +
                             static_cast<std::ptrdiff_t>(consumed));
        if (fatal)
            return;
    }
}

void
NetClient::readerLoop()
{
    Rng backoff(options_.backoffSeed);
    unsigned attempts = 0;
    for (;;) {
        runReader();
        connected_.store(false, std::memory_order_release);
        if (closing_.load(std::memory_order_acquire) ||
            options_.maxReconnects == 0)
            break;

        // Reconnect-and-replay: redial with jittered exponential
        // backoff (the budget is cumulative, not per-drop), swap the
        // descriptor under the send mutex, and resend every
        // outstanding frame.  Requests answered before the drop were
        // already resolved; the rest get a second life instead of a
        // Disconnected.
        bool reconnected = false;
        while (attempts < options_.maxReconnects &&
               !closing_.load(std::memory_order_acquire)) {
            const auto delay =
                jitteredBackoff(attempts, options_.backoffBase,
                                options_.backoffCap, backoff);
            ++attempts;
            std::this_thread::sleep_for(delay);
            if (closing_.load(std::memory_order_acquire))
                break;
            const int nfd = openSocket(host_, port_, /*fatal=*/false);
            if (nfd < 0)
                continue;
            {
                MutexLock lock(sendMutex_);
                if (closing_.load(std::memory_order_acquire)) {
                    ::close(nfd);
                    break;
                }
                const int old =
                    fd_.exchange(nfd, std::memory_order_acq_rel);
                if (old >= 0)
                    ::close(old);
                connected_.store(true, std::memory_order_release);
            }
            reconnects_.fetch_add(1, std::memory_order_relaxed);
            replayPending();
            reconnected = true;
            break;
        }
        if (!reconnected)
            break;
    }
    {
        MutexLock lock(pendingMutex_);
        readerActive_ = false;
    }
    connected_.store(false, std::memory_order_release);
    failAll();
}

void
NetClient::timeoutLoop()
{
    const auto period =
        std::max(std::chrono::milliseconds(1),
                 options_.requestTimeout / 4);
    MutexLock lock(pendingMutex_);
    while (!timeoutStop_) {
        timeoutCv_.wait_for(pendingMutex_, period);
        if (timeoutStop_)
            return;
        const auto now = Clock::now();
        std::vector<Pending> expired;
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->second.deadline.time_since_epoch().count() != 0 &&
                now >= it->second.deadline) {
                expired.push_back(std::move(it->second));
                it = pending_.erase(it);
            } else {
                ++it;
            }
        }
        if (expired.empty())
            continue;
        timeouts_.fetch_add(expired.size(),
                            std::memory_order_relaxed);
        // Fulfill outside the lock: a waiter continuation must not
        // run under pendingMutex_.
        lock.unlock();
        for (auto &pending : expired) {
            RemoteResult result;
            result.status = wire::Status::TimedOut;
            result.submitAt = pending.submitAt;
            result.doneAt = now;
            pending.promise.set_value(std::move(result));
        }
        lock.lock();
    }
}

} // namespace spatial::serve
