/**
 * @file
 * Deadline-aware lane batching for one design.
 *
 * The wide engine wants 64*W-lane planes; clients send one-or-few-lane
 * requests.  The Batcher accumulates lane-shaped requests for a single
 * design and cuts flush groups under a pluggable policy:
 *
 *  - **full**: pending lanes reached BatchPolicy::maxBatch (or an
 *    incoming request would overflow the open group);
 *  - **deadline**: the oldest queued request has waited maxDelay;
 *  - **drain**: the owner flushes explicitly (shutdown, drain()).
 *
 * The class is deliberately not synchronized: the Server drives every
 * batcher under its scheduling lock, and the unit tests drive one
 * directly to pin the policy boundaries.  Timestamps are passed in so
 * tests can step a virtual clock.
 */

#ifndef SPATIAL_SERVE_BATCHER_H
#define SPATIAL_SERVE_BATCHER_H

#include <chrono>
#include <future>
#include <optional>
#include <vector>

#include "serve/request.h"

namespace spatial::serve
{

/** Flush-policy knobs of one Batcher. */
struct BatchPolicy
{
    /** Lane budget per group; a full group flushes immediately. */
    std::size_t maxBatch = 256;

    /** Longest a queued request may wait before a forced flush. */
    std::chrono::microseconds maxDelay{2000};
};

/** One queued request awaiting execution. */
struct PendingRequest
{
    Request request;                        //!< the client's work
    std::promise<Response> promise;         //!< fulfilled at scatter
    std::chrono::time_point<Clock> submitAt{}; //!< enqueue timestamp
};

/** A flushed set of requests, ready for the scheduler. */
struct Group
{
    DesignId design = 0;                  //!< owning design
    std::vector<PendingRequest> requests; //!< members, submit order
    std::size_t lanes = 0;                //!< total engine lanes
    FlushReason reason = FlushReason::Drain; //!< why it flushed
    std::chrono::time_point<Clock> flushAt{}; //!< flush timestamp
};

/** Per-design accumulator cutting groups under the flush policy. */
class Batcher
{
  public:
    /** Batcher for `design` under `policy` (maxBatch clamps to >=1). */
    Batcher(DesignId design, BatchPolicy policy);

    /**
     * Queue one lane-shaped request (not EsnSequence).  Returns the
     * groups this enqueue completed: the previously open group when the
     * request would have overflowed it, and/or the now-full group.  A
     * request that opens a group sets its deadline to
     * max(submitAt, now) + maxDelay, so queueing time spent upstream of
     * the batcher never produces an already-expired group.
     */
    std::vector<Group> enqueue(PendingRequest pending,
                               std::chrono::time_point<Clock> now);

    /**
     * Cut the open group if the oldest request's deadline has passed.
     */
    std::optional<Group> pollDeadline(std::chrono::time_point<Clock> now);

    /** Cut the open group unconditionally (empty => nullopt). */
    std::optional<Group> flush(FlushReason reason,
                               std::chrono::time_point<Clock> now);

    /**
     * When a request is queued, the instant the open group must flush;
     * nullopt when the queue is empty.
     */
    std::optional<std::chrono::time_point<Clock>> deadline() const;

    /** Lanes currently queued. */
    std::size_t pendingLanes() const { return pendingLanes_; }

    /** Requests currently queued. */
    std::size_t pendingRequests() const { return pending_.size(); }

    /** The flush policy. */
    const BatchPolicy &policy() const { return policy_; }

  private:
    Group cut(FlushReason reason, std::chrono::time_point<Clock> now);

    DesignId design_;
    BatchPolicy policy_;
    std::vector<PendingRequest> pending_;
    std::size_t pendingLanes_ = 0;
    std::chrono::time_point<Clock> deadline_{};
};

} // namespace spatial::serve

#endif // SPATIAL_SERVE_BATCHER_H
