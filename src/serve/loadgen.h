/**
 * @file
 * Load generation against the serving layer.
 *
 * One harness behind both the spatial-serve CLI and the registry's
 * serving_throughput experiment: it builds a mixed multi-design
 * workload from a seeded Rng, drives a Server in one of three modes —
 * open loop (Poisson arrivals at a target QPS), closed loop (N clients
 * in submit/wait cycles), or drain (submit everything, then drain: the
 * batch-saturating ceiling) — and reports throughput, latency
 * percentiles, and batching behaviour.  Drain mode can additionally
 * execute the identical request list on the naive
 * one-request-per-multiply path (per-worker core::TiledGemv) to
 * measure the batching speedup, verifying both sides bit-identical
 * first.
 */

#ifndef SPATIAL_SERVE_LOADGEN_H
#define SPATIAL_SERVE_LOADGEN_H

#include <cstdint>
#include <string>

#include "serve/server.h"

namespace spatial::serve
{

/** Workload and drive-mode knobs of one load-generation run. */
struct LoadGenOptions
{
    /** How the generator applies load. */
    enum class Mode
    {
        Open,   //!< Poisson arrivals at `qps` for `duration` seconds
        Closed, //!< `clients` threads in submit/wait loops
        Drain,  //!< submit `requests` up front, then drain
    };

    Mode mode = Mode::Drain;

    /** Open loop: target arrival rate (requests/second). */
    double qps = 20000.0;

    /** Closed loop: concurrent clients. */
    unsigned clients = 128;

    /** Open/closed loop: run length in seconds. */
    double duration = 1.0;

    /** Drain mode: total requests submitted before the drain. */
    std::size_t requests = 4096;

    /** Distinct designs receiving traffic (round-robin-ish mix). */
    std::size_t designs = 1;

    /** Design shape: dim x dim signed matrices. */
    std::size_t dim = 128;

    /** Weight / input bitwidth. */
    int bits = 8;

    /** Element sparsity of the generated weights. */
    double sparsity = 0.9;

    /** Fraction of requests that are pre-batched GemvBatch. */
    double batchFraction = 0.0;

    /** Rows per GemvBatch request. */
    std::size_t batchSize = 16;

    /** Fraction of requests that are EsnStep updates. */
    double esnFraction = 0.0;

    /** Workload / arrival-stream seed (reproducible run-to-run). */
    std::uint64_t seed = 42;

    /** Drain mode: also time the naive path and check bit-identity. */
    bool compareNaive = false;

    /**
     * Remote endpoint ("host:port").  Non-empty routes the identical
     * workload through a NetClient over the wire protocol to a
     * NetServer instead of an in-process Server; `serve` is then the
     * remote process's concern and ignored here (except that
     * compareNaive still times the naive path locally on the same
     * generated designs, so the bit-exactness gate covers the full
     * wire path).
     */
    std::string remote;

    /**
     * Remote drain mode: resubmit requests shed with Status::Busy (or
     * expired with TimedOut) in follow-up rounds until every request
     * completes (the shed and retry counts are still reported).  The
     * inter-round sleep is a jittered exponential backoff that resets
     * whenever a round makes progress.  Disable to measure shedding
     * itself — completion then covers only admitted requests.
     */
    bool retryBusy = true;

    /**
     * Remote mode: per-request deadline forwarded to the NetClient;
     * expired requests resolve TimedOut and are retried (drain mode
     * with retryBusy) or counted (open/closed).  0 disables.
     */
    std::chrono::milliseconds requestTimeout{0};

    /**
     * Remote mode: NetClient reconnect budget after an unexpected
     * disconnect (outstanding requests are replayed on the fresh
     * connection).  0 keeps the legacy fail-fast behavior, where a
     * mid-run disconnect is fatal.
     */
    unsigned reconnects = 0;

    /** Latency SLO target (ms) for the compliance figure. */
    double sloMs = 50.0;

    /** Server configuration (in-process mode). */
    ServeOptions serve;
};

/** Latency distribution summary (milliseconds). */
struct LatencySummary
{
    double p50 = 0.0;  //!< median
    double p95 = 0.0;  //!< 95th percentile
    double p99 = 0.0;  //!< 99th percentile
    double mean = 0.0; //!< arithmetic mean
    double max = 0.0;  //!< worst observed
};

/** The outcome of one load-generation run. */
struct LoadGenResult
{
    std::size_t completed = 0;  //!< requests fulfilled
    double seconds = 0.0;       //!< wall clock of the loaded phase
    double throughput = 0.0;    //!< completed / seconds
    LatencySummary latencyMs;   //!< submit-to-scatter latency
    ServerStats stats;          //!< server counters after the run

    /** Worker threads the server actually ran (the 0 = "one per
     * hardware context" option sentinel resolved at startup); 0 in
     * remote mode, where the worker pool lives in another process. */
    unsigned workersResolved = 0;

    /** Requests shed with Status::Busy (remote mode). */
    std::size_t shed = 0;

    /** Resubmissions of shed requests (remote drain, retryBusy). */
    std::size_t busyRetries = 0;

    /** Requests that expired client-side (Status::TimedOut). */
    std::size_t timeouts = 0;

    /** Requests lost to a dead connection (Status::Disconnected). */
    std::size_t lost = 0;

    /** Successful client redials during the run (remote mode). */
    std::size_t reconnects = 0;

    /** Requests shed by the server's queue-age watchdog. */
    std::size_t watchdogShed = 0;

    /** Faults the server injected during the run (chaos runs only). */
    std::size_t faultsInjected = 0;

    /** Fraction of completed requests within LoadGenOptions::sloMs. */
    double sloCompliance = 1.0;

    /**
     * Remote mode: the server's per-shard counters at run end — one
     * row per shard, columns per wire::ShardStatsCol (occupancy and
     * shed counts per shard land in the JSON artifact).  Empty rows
     * for in-process runs.
     */
    IntMatrix shardStats;

    /** Drain mode with compareNaive: the naive path's numbers. */
    double naiveSeconds = 0.0;
    double naiveThroughput = 0.0;
    double speedup = 0.0; //!< batched / naive throughput
    bool bitExact = true; //!< batched outputs == naive outputs

    /** Flat JSON object for BENCH_serve.json / CI trending. */
    std::string toJson(const LoadGenOptions &options) const;
};

/**
 * Nearest-rank percentile summary of a latency sample (sorts the
 * sample in place).  Percentile q is the smallest observation with at
 * least ceil(q*N) samples at or below it.
 */
LatencySummary summarize(std::vector<double> &latencies_ms);

/** Mode name for reports ("open" / "closed" / "drain"). */
const char *modeName(LoadGenOptions::Mode mode);

/** Parse a mode name; fatal on anything unknown. */
LoadGenOptions::Mode parseMode(const std::string &name);

/** Build the workload, run the server under it, summarize. */
LoadGenResult runLoadGen(const LoadGenOptions &options);

} // namespace spatial::serve

#endif // SPATIAL_SERVE_LOADGEN_H
