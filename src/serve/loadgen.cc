#include "serve/loadgen.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <sstream>
#include <thread>

#include "common/logging.h"
#include "common/rng.h"
#include "core/batch_engine.h"
#include "core/tiled_design.h"
#include "experiments/json.h"
#include "matrix/bits.h"
#include "matrix/generate.h"
#include "serve/net_client.h"

namespace spatial::serve
{

namespace
{

/** ESN-step knobs the generated workload uses throughout. */
constexpr int kEsnPostShift = 2;

struct Workload
{
    std::vector<IntMatrix> weights; //!< per-design matrices
    std::vector<DesignId> ids;      //!< registered design ids
    core::CompileOptions compile;   //!< shared compile options
    /** Request templates, paired with their target design. */
    std::vector<std::pair<std::size_t, Request>> stream;
};

/**
 * Generate designs + a request stream from one seeded Rng; the
 * register callback hides whether the design lands in an in-process
 * Server or travels over the wire, so both paths see byte-identical
 * workloads for one seed.
 */
Workload
makeWorkload(const LoadGenOptions &options,
             const std::function<DesignId(const IntMatrix &,
                                          const core::CompileOptions &)>
                 &register_design,
             std::size_t stream_length)
{
    Workload workload;
    Rng rng(options.seed);

    workload.compile.inputBits = options.bits;
    workload.compile.inputsSigned = true;
    workload.compile.signMode = core::SignMode::Csd;

    const std::size_t designs = std::max<std::size_t>(1, options.designs);
    for (std::size_t d = 0; d < designs; ++d) {
        workload.weights.push_back(makeSignedElementSparseMatrix(
            options.dim, options.dim, options.bits, options.sparsity,
            rng));
        workload.ids.push_back(
            register_design(workload.weights.back(), workload.compile));
    }

    workload.stream.reserve(stream_length);
    for (std::size_t i = 0; i < stream_length; ++i) {
        const std::size_t d = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(designs) - 1));
        const double mix = rng.uniformReal();
        Request request;
        if (mix < options.esnFraction) {
            request = Request::esnStep(
                makeSignedVector(options.dim, options.bits, rng),
                makeSignedVector(options.dim, options.bits, rng),
                kEsnPostShift, options.bits);
        } else if (mix < options.esnFraction + options.batchFraction) {
            request = Request::gemvBatch(makeSignedBatch(
                std::max<std::size_t>(1, options.batchSize), options.dim,
                options.bits, rng));
        } else {
            request = Request::gemv(
                makeSignedVector(options.dim, options.bits, rng));
        }
        workload.stream.emplace_back(d, std::move(request));
    }
    return workload;
}

double
secondsBetween(std::chrono::time_point<Clock> a,
               std::chrono::time_point<Clock> b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** The naive path's answer to one request (one multiply per vector). */
IntMatrix
naiveAnswer(core::TiledGemv &gemv, const Request &request,
            std::size_t cols)
{
    if (request.kind == RequestKind::GemvBatch) {
        IntMatrix out(request.batch.rows(), cols);
        std::vector<std::int64_t> x(request.batch.cols());
        std::vector<std::int64_t> o;
        for (std::size_t b = 0; b < request.batch.rows(); ++b) {
            for (std::size_t r = 0; r < x.size(); ++r)
                x[r] = request.batch.at(b, r);
            gemv.multiplyInto(x, o);
            for (std::size_t c = 0; c < cols; ++c)
                out.at(b, c) = o[c];
        }
        return out;
    }
    std::vector<std::int64_t> o;
    gemv.multiplyInto(request.vec, o);
    IntMatrix out(1, cols);
    if (request.kind == RequestKind::EsnStep) {
        for (std::size_t c = 0; c < cols; ++c) {
            const std::int64_t inj =
                request.inject.empty() ? 0 : request.inject[c];
            out.at(0, c) = esnClipUpdate(o[c] + inj, request.postShift,
                                         request.stateBits);
        }
    } else {
        for (std::size_t c = 0; c < cols; ++c)
            out.at(0, c) = o[c];
    }
    return out;
}

/** Time the identical stream on per-worker sequential executors. */
double
runNaive(
    const std::vector<std::shared_ptr<const core::TiledDesign>> &designs,
    const core::SimOptions &sim, unsigned workers,
    const Workload &workload, std::vector<IntMatrix> &outputs)
{
    outputs.assign(workload.stream.size(), IntMatrix());
    std::atomic<std::size_t> next{0};
    const auto start = Clock::now();
    auto body = [&] {
        // One persistent single-vector executor per (worker, design),
        // on the run's configured engine knobs — the comparison must
        // vary only the batching dimension, not the gating mode.
        std::vector<std::unique_ptr<core::TiledGemv>> gemvs;
        gemvs.reserve(designs.size());
        for (const auto &design : designs)
            gemvs.push_back(
                std::make_unique<core::TiledGemv>(*design, sim));
        const std::size_t cols = designs.front()->cols();
        for (std::size_t i = next.fetch_add(1);
             i < workload.stream.size(); i = next.fetch_add(1)) {
            const auto &[d, request] = workload.stream[i];
            outputs[i] = naiveAnswer(*gemvs[d], request, cols);
        }
    };
    if (workers <= 1) {
        body();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(body);
        for (auto &thread : pool)
            thread.join();
    }
    return secondsBetween(start, Clock::now());
}

/** Latency summary + SLO compliance from the collected sample. */
void
finishLatencies(LoadGenResult &result, const LoadGenOptions &options,
                std::vector<double> &latencies_ms)
{
    // Count before summarize() sorts — either order works, but the
    // sorted vector makes the compliance scan a partition point.
    result.latencyMs = summarize(latencies_ms);
    if (latencies_ms.empty()) {
        result.sloCompliance = 1.0;
        return;
    }
    const auto within = std::upper_bound(
        latencies_ms.begin(), latencies_ms.end(), options.sloMs);
    result.sloCompliance =
        static_cast<double>(within - latencies_ms.begin()) /
        static_cast<double>(latencies_ms.size());
}

/** The local reference compile of a remote run's generated designs. */
std::vector<std::shared_ptr<const core::TiledDesign>>
compileLocally(const Workload &workload, const core::TileOptions &tile)
{
    std::vector<std::shared_ptr<const core::TiledDesign>> designs;
    designs.reserve(workload.weights.size());
    for (const IntMatrix &weights : workload.weights)
        designs.push_back(std::make_shared<const core::TiledDesign>(
            core::TiledDesign::compile(weights, workload.compile,
                                       tile)));
    return designs;
}

/** Drive a remote NetServer through the wire protocol. */
LoadGenResult
runRemote(const LoadGenOptions &options)
{
    LoadGenResult result;
    std::string host;
    std::uint16_t port = 0;
    parseEndpoint(options.remote, &host, &port);
    NetClientOptions copts;
    copts.requestTimeout = options.requestTimeout;
    copts.maxReconnects = options.reconnects;
    NetClient client(host, port, copts);

    auto register_design = [&](const IntMatrix &weights,
                               const core::CompileOptions &compile)
        -> DesignId {
        std::uint32_t id = 0;
        const wire::Status status =
            client.registerDesign(weights, compile, &id);
        if (status != wire::Status::Ok)
            SPATIAL_FATAL("remote register failed: ",
                          wire::statusName(status));
        return id;
    };

    std::vector<double> latencies;

    if (options.mode == LoadGenOptions::Mode::Drain) {
        auto workload =
            makeWorkload(options, register_design, options.requests);
        std::vector<IntMatrix> outputs(workload.stream.size());
        std::vector<bool> done(workload.stream.size(), false);

        std::vector<std::size_t> todo(workload.stream.size());
        for (std::size_t i = 0; i < todo.size(); ++i)
            todo[i] = i;

        // Inter-round pacing: jittered exponential backoff that resets
        // whenever a round completes at least one request, so a
        // briefly saturated server is repolled politely instead of
        // hammered on a fixed 1ms cadence.
        Rng backoff_rng(options.seed ^ 0x0b0ff5eedULL);
        unsigned stall_rounds = 0;
        bool client_dead = false;

        const auto start = Clock::now();
        while (!todo.empty() && !client_dead) {
            std::vector<std::pair<std::size_t,
                                  std::future<RemoteResult>>>
                futures;
            futures.reserve(todo.size());
            for (const std::size_t i : todo) {
                const auto &[d, request] = workload.stream[i];
                futures.emplace_back(
                    i, client.submit(static_cast<std::uint32_t>(
                                         workload.ids[d]),
                                     Request(request)));
            }
            std::vector<std::size_t> again;
            for (auto &[i, future] : futures) {
                RemoteResult r = future.get();
                if (r.status == wire::Status::Ok) {
                    outputs[i] = std::move(r.output);
                    done[i] = true;
                    latencies.push_back(r.latencySeconds() * 1e3);
                } else if (r.status == wire::Status::Busy ||
                           r.status == wire::Status::TimedOut) {
                    if (r.status == wire::Status::Busy)
                        ++result.shed;
                    else
                        ++result.timeouts;
                    if (options.retryBusy) {
                        again.push_back(i);
                        ++result.busyRetries;
                    }
                } else if (r.status == wire::Status::Disconnected &&
                           options.reconnects > 0) {
                    // The reconnect budget is exhausted: the client is
                    // dead for good, so everything unanswered is lost
                    // — report it rather than spinning forever.
                    ++result.lost;
                    client_dead = true;
                } else {
                    SPATIAL_FATAL("remote request failed: ",
                                  wire::statusName(r.status));
                }
            }
            stall_rounds = again.size() == todo.size()
                               ? stall_rounds + 1
                               : 0;
            todo = std::move(again);
            if (!todo.empty() && !client_dead)
                std::this_thread::sleep_for(jitteredBackoff(
                    stall_rounds, std::chrono::milliseconds(1),
                    std::chrono::milliseconds(100), backoff_rng));
        }
        result.seconds = secondsBetween(start, Clock::now());
        result.completed = latencies.size();

        if (options.compareNaive) {
            const auto local =
                compileLocally(workload, options.serve.tile);
            std::vector<IntMatrix> naive;
            const unsigned workers =
                std::max(1u, std::thread::hardware_concurrency());
            result.naiveSeconds = runNaive(local, options.serve.sim,
                                           workers, workload, naive);
            result.naiveThroughput =
                static_cast<double>(workload.stream.size()) /
                result.naiveSeconds;
            for (std::size_t i = 0; i < naive.size(); ++i)
                if (done[i] && !(naive[i] == outputs[i])) {
                    result.bitExact = false;
                    break;
                }
        }
    } else if (options.mode == LoadGenOptions::Mode::Open) {
        if (!(options.qps > 0.0))
            SPATIAL_FATAL("open-loop load needs qps > 0, got ",
                          options.qps);
        const std::size_t pool =
            std::min<std::size_t>(1024, std::max<std::size_t>(
                                            64, options.requests));
        auto workload = makeWorkload(options, register_design, pool);
        Rng arrivals(options.seed ^ 0xa11afeedull);

        std::vector<std::future<RemoteResult>> futures;
        futures.reserve(static_cast<std::size_t>(
            options.qps * options.duration * 1.2 + 64));
        const auto start = Clock::now();
        const auto end =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(options.duration));
        auto next = start;
        std::size_t i = 0;
        for (;;) {
            const auto now = Clock::now();
            if (now >= end)
                break;
            if (now < next) {
                std::this_thread::sleep_until(std::min(next, end));
                continue;
            }
            const auto &[d, request] = workload.stream[i % pool];
            futures.push_back(client.submit(
                static_cast<std::uint32_t>(workload.ids[d]),
                Request(request)));
            ++i;
            const double u = std::min(arrivals.uniformReal(), 0.999999);
            next += std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(-std::log1p(-u) /
                                              options.qps));
        }
        for (auto &future : futures) {
            RemoteResult r = future.get();
            if (r.status == wire::Status::Ok)
                latencies.push_back(r.latencySeconds() * 1e3);
            else if (r.status == wire::Status::Busy)
                ++result.shed;
            else if (r.status == wire::Status::TimedOut)
                ++result.timeouts;
            else if (r.status == wire::Status::Disconnected &&
                     options.reconnects > 0)
                ++result.lost; // budget exhausted; open loop is lossy
            else
                SPATIAL_FATAL("remote request failed: ",
                              wire::statusName(r.status));
        }
        result.seconds = secondsBetween(start, Clock::now());
        result.completed = latencies.size();
    } else {
        const std::size_t pool = 1024;
        auto workload = makeWorkload(options, register_design, pool);
        const unsigned clients = std::max(1u, options.clients);

        std::atomic<bool> stop{false};
        std::atomic<std::size_t> shed{0};
        std::atomic<std::size_t> timedOut{0};
        std::atomic<std::size_t> lost{0};
        std::mutex latMutex;

        const auto start = Clock::now();
        std::vector<std::thread> threads;
        threads.reserve(clients);
        for (unsigned t = 0; t < clients; ++t) {
            threads.emplace_back([&, t] {
                Rng pick(options.seed + 1 + t);
                std::vector<double> local;
                while (!stop.load(std::memory_order_relaxed)) {
                    const auto &[d, request] = workload.stream
                        [static_cast<std::size_t>(pick.uniformInt(
                            0, static_cast<std::int64_t>(pool) - 1))];
                    RemoteResult r =
                        client
                            .submit(static_cast<std::uint32_t>(
                                        workload.ids[d]),
                                    Request(request))
                            .get();
                    if (r.status == wire::Status::Ok) {
                        local.push_back(r.latencySeconds() * 1e3);
                    } else if (r.status == wire::Status::Busy) {
                        shed.fetch_add(1);
                    } else if (r.status == wire::Status::TimedOut) {
                        timedOut.fetch_add(1);
                    } else {
                        lost.fetch_add(1);
                        break; // disconnected mid-run
                    }
                }
                std::lock_guard<std::mutex> lock(latMutex);
                latencies.insert(latencies.end(), local.begin(),
                                 local.end());
            });
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(options.duration));
        stop.store(true);
        for (auto &thread : threads)
            thread.join();
        result.seconds = secondsBetween(start, Clock::now());
        result.completed = latencies.size();
        result.shed = shed.load();
        result.timeouts = timedOut.load();
        result.lost = lost.load();
    }

    finishLatencies(result, options, latencies);
    const NetClientStats client_stats = client.stats();
    result.reconnects = client_stats.reconnects;
    if (client.fetchStats(&result.shardStats) == wire::Status::Ok &&
        result.shardStats.cols() >= wire::kShardStatsCols) {
        for (std::size_t s = 0; s < result.shardStats.rows(); ++s) {
            result.watchdogShed += static_cast<std::size_t>(
                result.shardStats.at(s, wire::kStatWatchdogShed));
            result.faultsInjected += static_cast<std::size_t>(
                result.shardStats.at(s, wire::kStatFaultsInjected));
        }
    }
    return result;
}

} // namespace

LatencySummary
summarize(std::vector<double> &latencies_ms)
{
    LatencySummary summary;
    if (latencies_ms.empty())
        return summary;
    std::sort(latencies_ms.begin(), latencies_ms.end());
    // Nearest-rank percentile: the smallest sample with at least q*N
    // observations at or below it, i.e. index ceil(q*N) - 1.  (The
    // previous floor(q*N) read one rank too high: p50 of a 2-sample
    // set returned the max.)
    const auto at = [&](double q) {
        const double rank =
            std::ceil(q * static_cast<double>(latencies_ms.size()));
        const std::size_t i = std::min(
            latencies_ms.size() - 1,
            static_cast<std::size_t>(std::max(rank, 1.0)) - 1);
        return latencies_ms[i];
    };
    summary.p50 = at(0.50);
    summary.p95 = at(0.95);
    summary.p99 = at(0.99);
    summary.max = latencies_ms.back();
    double sum = 0.0;
    for (const double v : latencies_ms)
        sum += v;
    summary.mean = sum / static_cast<double>(latencies_ms.size());
    return summary;
}

const char *
modeName(LoadGenOptions::Mode mode)
{
    switch (mode) {
      case LoadGenOptions::Mode::Open:
        return "open";
      case LoadGenOptions::Mode::Closed:
        return "closed";
      case LoadGenOptions::Mode::Drain:
        return "drain";
    }
    return "?";
}

LoadGenOptions::Mode
parseMode(const std::string &name)
{
    if (name == "open")
        return LoadGenOptions::Mode::Open;
    if (name == "closed")
        return LoadGenOptions::Mode::Closed;
    if (name == "drain")
        return LoadGenOptions::Mode::Drain;
    SPATIAL_FATAL("unknown load mode '", name,
                  "' (expected open, closed, or drain)");
}

LoadGenResult
runLoadGen(const LoadGenOptions &options)
{
    if (!options.remote.empty()) {
        LoadGenResult result = runRemote(options);
        result.throughput =
            result.seconds > 0.0
                ? static_cast<double>(result.completed) /
                      result.seconds
                : 0.0;
        if (result.naiveThroughput > 0.0)
            result.speedup =
                result.throughput / result.naiveThroughput;
        return result;
    }

    LoadGenResult result;
    Server server(options.serve);
    auto register_design = [&](const IntMatrix &weights,
                               const core::CompileOptions &compile) {
        return server.registerDesign(weights, compile);
    };
    std::vector<double> latencies;

    if (options.mode == LoadGenOptions::Mode::Drain) {
        auto workload = makeWorkload(options, register_design,
                                     options.requests);
        std::vector<std::future<Response>> futures;
        futures.reserve(workload.stream.size());

        const auto start = Clock::now();
        for (const auto &[d, request] : workload.stream)
            futures.push_back(
                server.submit(workload.ids[d], Request(request)));
        server.drain();
        result.seconds = secondsBetween(start, Clock::now());

        std::vector<Response> responses;
        responses.reserve(futures.size());
        for (auto &future : futures) {
            responses.push_back(future.get());
            // Watchdog sheds resolve with shed=true and no output;
            // they count as shed, not completed.
            if (responses.back().shed)
                ++result.shed;
            else
                latencies.push_back(
                    responses.back().latencySeconds() * 1e3);
        }
        result.completed = responses.size() - result.shed;

        if (options.compareNaive) {
            std::vector<std::shared_ptr<const core::TiledDesign>> refs;
            refs.reserve(workload.ids.size());
            for (const DesignId id : workload.ids)
                refs.push_back(server.design(id));
            std::vector<IntMatrix> naive;
            result.naiveSeconds =
                runNaive(refs, server.options().sim,
                         server.options().workers, workload, naive);
            result.naiveThroughput =
                static_cast<double>(result.completed) /
                result.naiveSeconds;
            for (std::size_t i = 0; i < naive.size(); ++i)
                if (!responses[i].shed &&
                    !(naive[i] == responses[i].output)) {
                    result.bitExact = false;
                    break;
                }
        }
    } else if (options.mode == LoadGenOptions::Mode::Open) {
        if (!(options.qps > 0.0))
            SPATIAL_FATAL("open-loop load needs qps > 0, got ",
                          options.qps);
        // Template pool cycled by the arrival process: generation cost
        // stays off the submission path.
        const std::size_t pool =
            std::min<std::size_t>(1024, std::max<std::size_t>(
                                            64, options.requests));
        auto workload = makeWorkload(options, register_design, pool);
        Rng arrivals(options.seed ^ 0xa11afeedull);

        std::vector<std::future<Response>> futures;
        futures.reserve(static_cast<std::size_t>(
            options.qps * options.duration * 1.2 + 64));
        const auto start = Clock::now();
        const auto end =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(options.duration));
        auto next = start;
        std::size_t i = 0;
        for (;;) {
            const auto now = Clock::now();
            if (now >= end)
                break;
            if (now < next) {
                std::this_thread::sleep_until(std::min(next, end));
                continue;
            }
            const auto &[d, request] = workload.stream[i % pool];
            futures.push_back(
                server.submit(workload.ids[d], Request(request)));
            ++i;
            const double u = std::min(arrivals.uniformReal(), 0.999999);
            next += std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(-std::log1p(-u) /
                                              options.qps));
        }
        server.drain();
        result.seconds = secondsBetween(start, Clock::now());

        latencies.reserve(futures.size());
        for (auto &future : futures) {
            const Response response = future.get();
            if (response.shed)
                ++result.shed;
            else
                latencies.push_back(response.latencySeconds() * 1e3);
        }
        result.completed = latencies.size();
    } else {
        const std::size_t pool = 1024;
        auto workload = makeWorkload(options, register_design, pool);
        const unsigned clients = std::max(1u, options.clients);

        std::atomic<bool> stop{false};
        std::atomic<std::size_t> completed{0};
        std::atomic<std::size_t> shedCount{0};
        std::mutex latMutex;

        const auto start = Clock::now();
        std::vector<std::thread> threads;
        threads.reserve(clients);
        for (unsigned t = 0; t < clients; ++t) {
            threads.emplace_back([&, t] {
                Rng pick(options.seed + 1 + t);
                std::vector<double> local;
                while (!stop.load(std::memory_order_relaxed)) {
                    const auto &[d, request] = workload.stream
                        [static_cast<std::size_t>(pick.uniformInt(
                            0, static_cast<std::int64_t>(pool) - 1))];
                    auto future = server.submit(workload.ids[d],
                                                Request(request));
                    const Response response = future.get();
                    if (response.shed)
                        shedCount.fetch_add(1);
                    else
                        local.push_back(response.latencySeconds() *
                                        1e3);
                }
                completed.fetch_add(local.size());
                std::lock_guard<std::mutex> lock(latMutex);
                latencies.insert(latencies.end(), local.begin(),
                                 local.end());
            });
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(options.duration));
        stop.store(true);
        for (auto &thread : threads)
            thread.join();
        server.drain();
        result.seconds = secondsBetween(start, Clock::now());
        result.completed = completed.load();
        result.shed = shedCount.load();
    }

    finishLatencies(result, options, latencies);
    result.throughput = result.seconds > 0.0
                            ? static_cast<double>(result.completed) /
                                  result.seconds
                            : 0.0;
    if (result.naiveThroughput > 0.0)
        result.speedup = result.throughput / result.naiveThroughput;
    result.stats = server.stats();
    result.watchdogShed = result.stats.watchdogShed;
    result.faultsInjected = result.stats.faultsInjected;
    result.workersResolved = server.options().workers;
    return result;
}

std::string
LoadGenResult::toJson(const LoadGenOptions &options) const
{
    using experiments::jsonQuote;
    using experiments::jsonReal;
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"spatial-serve/v3\",\n";
    out << "  \"mode\": " << jsonQuote(modeName(options.mode)) << ",\n";
    out << "  \"remote\": " << jsonQuote(options.remote) << ",\n";
    out << "  \"designs\": " << options.designs << ",\n";
    out << "  \"dim\": " << options.dim << ",\n";
    out << "  \"bits\": " << options.bits << ",\n";
    out << "  \"sparsity\": " << jsonReal(options.sparsity) << ",\n";
    out << "  \"max_batch\": " << options.serve.maxBatch << ",\n";
    out << "  \"max_delay_us\": " << options.serve.maxDelay.count()
        << ",\n";
    // The resolved worker count, not the raw option: a 0 = "auto"
    // sentinel in an artifact is useless for comparing runs across
    // machines.
    out << "  \"workers\": " << workersResolved << ",\n";
    out << "  \"kernel\": "
        << jsonQuote(core::resolvedKernel(options.serve.sim).name)
        << ",\n";
    out << "  \"activity_gating\": "
        << (options.serve.sim.activityGating ? "true" : "false") << ",\n";
    out << "  \"segment_kib\": " << options.serve.sim.segmentKib
        << ",\n";
    out << "  \"jit\": " << (options.serve.sim.jit ? "true" : "false")
        << ",\n";
    out << "  \"seed\": " << options.seed << ",\n";
    out << "  \"qps_target\": " << jsonReal(options.qps) << ",\n";
    out << "  \"completed\": " << completed << ",\n";
    out << "  \"shed\": " << shed << ",\n";
    out << "  \"busy_retries\": " << busyRetries << ",\n";
    out << "  \"request_timeout_ms\": " << options.requestTimeout.count()
        << ",\n";
    out << "  \"timeouts\": " << timeouts << ",\n";
    out << "  \"lost\": " << lost << ",\n";
    out << "  \"reconnects\": " << reconnects << ",\n";
    out << "  \"watchdog_shed\": " << watchdogShed << ",\n";
    out << "  \"faults_injected\": " << faultsInjected << ",\n";
    out << "  \"seconds\": " << jsonReal(seconds) << ",\n";
    out << "  \"throughput\": " << jsonReal(throughput) << ",\n";
    out << "  \"p50_ms\": " << jsonReal(latencyMs.p50) << ",\n";
    out << "  \"p95_ms\": " << jsonReal(latencyMs.p95) << ",\n";
    out << "  \"p99_ms\": " << jsonReal(latencyMs.p99) << ",\n";
    out << "  \"mean_ms\": " << jsonReal(latencyMs.mean) << ",\n";
    out << "  \"max_ms\": " << jsonReal(latencyMs.max) << ",\n";
    out << "  \"slo_ms\": " << jsonReal(options.sloMs) << ",\n";
    out << "  \"slo_compliance\": " << jsonReal(sloCompliance)
        << ",\n";
    out << "  \"groups\": " << stats.groups << ",\n";
    out << "  \"lanes\": " << stats.lanes << ",\n";
    out << "  \"padded_lanes\": " << stats.paddedLanes << ",\n";
    out << "  \"occupancy\": " << jsonReal(stats.occupancy()) << ",\n";
    out << "  \"flush_full\": " << stats.flushFull << ",\n";
    out << "  \"flush_deadline\": " << stats.flushDeadline << ",\n";
    out << "  \"flush_drain\": " << stats.flushDrain << ",\n";
    out << "  \"engine_passes\": " << stats.enginePasses << ",\n";
    out << "  \"segments_executed\": " << stats.segmentsExecuted
        << ",\n";
    out << "  \"segments_skipped\": " << stats.segmentsSkipped << ",\n";
    out << "  \"sequences\": " << stats.sequences << ",\n";
    out << "  \"store_hits\": " << stats.store.cache.hits << ",\n";
    out << "  \"store_misses\": " << stats.store.cache.misses << ",\n";
    out << "  \"store_evictions\": " << stats.store.evictions << ",\n";
    out << "  \"store_demotions\": " << stats.store.demotions << ",\n";
    out << "  \"store_promotions\": " << stats.store.promotions
        << ",\n";
    out << "  \"store_cold_fallbacks\": " << stats.store.coldFallbacks
        << ",\n";
    out << "  \"store_compile_seconds\": "
        << jsonReal(stats.store.compileSeconds) << ",\n";
    out << "  \"store_load_seconds\": "
        << jsonReal(stats.store.loadSeconds) << ",\n";
    out << "  \"jit_admitted\": " << stats.store.jitAdmitted << ",\n";
    out << "  \"jit_failed\": " << stats.store.jitFailed << ",\n";
    out << "  \"jit_admit_seconds\": "
        << jsonReal(stats.store.jitCompileSeconds) << ",\n";
    out << "  \"jit_groups\": " << stats.jitGroups << ",\n";
    out << "  \"jit_fallback_groups\": " << stats.jitFallbackGroups
        << ",\n";
    // Remote runs carry the server's own per-shard view: occupancy and
    // shed counts per engine pool, fetched over the wire at run end.
    out << "  \"shards\": [";
    for (std::size_t s = 0; s < shardStats.rows(); ++s) {
        const auto cell = [&](wire::ShardStatsCol c) {
            return shardStats.at(s, c);
        };
        const double padded =
            static_cast<double>(cell(wire::kStatPaddedLanes));
        const double occupancy =
            padded > 0.0
                ? static_cast<double>(cell(wire::kStatLanes)) / padded
                : 0.0;
        out << (s == 0 ? "\n" : ",\n");
        out << "    {\"shard\": " << s
            << ", \"requests\": " << cell(wire::kStatRequests)
            << ", \"lanes\": " << cell(wire::kStatLanes)
            << ", \"padded_lanes\": " << cell(wire::kStatPaddedLanes)
            << ", \"occupancy\": " << jsonReal(occupancy)
            << ", \"groups\": " << cell(wire::kStatGroups)
            << ", \"sequences\": " << cell(wire::kStatSequences)
            << ", \"submitted\": " << cell(wire::kStatSubmitted)
            << ", \"shed\": " << cell(wire::kStatShed)
            << ", \"in_flight\": " << cell(wire::kStatInFlight)
            << ", \"watchdog_shed\": " << cell(wire::kStatWatchdogShed)
            << ", \"faults_injected\": "
            << cell(wire::kStatFaultsInjected) << "}";
    }
    out << (shardStats.rows() > 0 ? "\n  ],\n" : "],\n");
    out << "  \"naive_seconds\": " << jsonReal(naiveSeconds) << ",\n";
    out << "  \"naive_throughput\": " << jsonReal(naiveThroughput)
        << ",\n";
    out << "  \"speedup\": " << jsonReal(speedup) << ",\n";
    out << "  \"bit_exact\": " << (bitExact ? "true" : "false") << "\n";
    out << "}\n";
    return out.str();
}

} // namespace spatial::serve
