/**
 * @file
 * The memory-tiered design store for the serving layer: an LRU hot
 * tier of live TiledDesigns over an optional on-disk cold tier.
 *
 * Serving traffic references a working set of models that changes over
 * time; unlike an offline sweep (experiments::DesignCache, which only
 * ever grows), the serving store must be bounded.  The store keys on
 * the exact same identity as the sweep cache — experiments::DesignKey,
 * the matrix FNV content hash plus CompileOptions — so "same design"
 * means the same thing online and offline, and reuses
 * DesignCache::Stats as its hit/miss snapshot.
 *
 * Tiering (FlashX-style in-memory vs. external backends): when a
 * spill directory is configured, LRU eviction *demotes* the design —
 * it is serialized to the cold tier (store::ColdTier) before the hot
 * entry drops — and a later request for the key *promotes* it back by
 * loading the file instead of recompiling, several times faster at
 * the dims where compiles take seconds.  A cold file that fails
 * validation (truncated, checksum mismatch, wrong version) falls back
 * to a recompile with a logged warning; tiering is an optimization,
 * never a correctness dependency.  Without a spill directory,
 * eviction drops the entry outright (the pre-tiering behavior).
 *
 * Designs are compiled as column-strip tiles under StoreOptions::tile
 * (core::TiledDesign), so a dim-8192 registration works exactly like
 * a dim-64 one — it just produces more tiles.
 *
 * Thread-safe.  Concurrent get()s for one key materialize once: the
 * first requester owns the load-or-compile and everyone else blocks
 * on its shared future (in-flight dedup).  Eviction is strict LRU
 * over completed entries; evicted designs stay alive for holders of
 * the returned shared_ptr.  Demotion serialization runs outside the
 * store mutex.
 */

#ifndef SPATIAL_SERVE_DESIGN_STORE_H
#define SPATIAL_SERVE_DESIGN_STORE_H

#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "core/tiled_design.h"
#include "experiments/design_cache.h"
#include "matrix/dense.h"
#include "store/cold_tier.h"

namespace spatial::serve
{

/** Configuration of one DesignStore. */
struct StoreOptions
{
    /** Hot-tier capacity: resident designs (min 1). */
    std::size_t capacity = 64;

    /**
     * Cold-tier directory; empty disables tiering (eviction then
     * drops designs outright instead of demoting them).
     */
    std::string spillDir;

    /** Column-tiling budget every design is compiled under. */
    core::TileOptions tile;
};

/** Memory-tiered LRU of compiled designs with in-flight dedup. */
class DesignStore
{
  public:
    /** Snapshot of the store's accounting. */
    struct Stats
    {
        /**
         * Hot-tier hit/miss counters (same struct the sweep cache
         * exposes).  A miss that promotes from the cold tier still
         * counts as a miss — `promotions` splits the misses into
         * loaded-vs-compiled.
         */
        experiments::DesignCache::Stats cache;

        std::size_t evictions = 0; //!< hot entries dropped by the LRU
        std::size_t resident = 0;  //!< hot entries currently held

        /** Evictions serialized into the cold tier. */
        std::size_t demotions = 0;

        /** Misses served by loading a cold-tier file. */
        std::size_t promotions = 0;

        /**
         * Cold files rejected (checksum/corruption/version) and
         * recompiled instead; each leaves a logged warning.
         */
        std::size_t coldFallbacks = 0;

        /** Wall-clock seconds spent compiling on misses. */
        double compileSeconds = 0.0;

        /** Wall-clock seconds spent loading cold designs. */
        double loadSeconds = 0.0;

        /** Designs that left admission with a JIT module attached. */
        std::size_t jitAdmitted = 0;

        /**
         * Designs whose JIT admission produced no module (toolchain
         * missing or compile failed); they serve on the interpreted
         * tape.
         */
        std::size_t jitFailed = 0;

        /**
         * Total wall-clock seconds spent in admission-time JIT
         * compiles (generation + out-of-process cc), across designs.
         */
        double jitCompileSeconds = 0.0;

        /**
         * Injected admission faults absorbed (compile failures ridden
         * out by the bounded retry, plus injected latency spikes);
         * always 0 outside chaos runs.  See common/fault.h.
         */
        std::uint64_t faultsInjected = 0;
    };

    /** Hot-only store holding at most `capacity` designs (min 1). */
    explicit DesignStore(std::size_t capacity = 64);

    /** Fully configured store (capacity, cold tier, tiling). */
    explicit DesignStore(StoreOptions options);

    /**
     * The design for (weights, options), materializing on first
     * request: cold-tier load when a valid spill file exists,
     * compile otherwise.  Never returns null; rethrows the owner's
     * error to every waiter and evicts the entry so later calls
     * retry.
     */
    std::shared_ptr<const core::TiledDesign>
    get(const IntMatrix &weights, const core::CompileOptions &options);

    /**
     * As get(), for callers that already computed the key (avoids
     * re-hashing the matrix); `key` must equal
     * makeDesignKey(weights, options).
     */
    std::shared_ptr<const core::TiledDesign>
    get(const experiments::DesignKey &key, const IntMatrix &weights,
        const core::CompileOptions &options);

    /**
     * Enable admission-time JIT compilation: every design materialized
     * after this call also gets native modules (CompiledMatrix::
     * ensureJit per tile) for `sim`'s execution mode at W = 1 plus the
     * widest lane-word count the engine resolves for a full batch of
     * `max_batch_lanes` vectors — the sequential-executor and
     * full-group hot paths.  Promotions re-admit (JIT attachments are
     * not serialized).  The JIT compile rides the store's in-flight
     * dedup, so an admission storm never compiles a design's modules
     * twice.  Admission failures are counted, not raised: the design
     * serves on the interpreted tape.
     */
    void setJitAdmission(const core::SimOptions &sim,
                         std::size_t max_batch_lanes);

    /** Current accounting (counters are lock-free reads). */
    Stats stats() const;

    /** Cold-tier traffic counters; zeros when tiering is disabled. */
    store::ColdTierStats coldStats() const;

    /** The configured capacity. */
    std::size_t capacity() const { return options_.capacity; }

    /** The full configuration. */
    const StoreOptions &options() const { return options_; }

  private:
    using Future =
        std::shared_future<std::shared_ptr<const core::TiledDesign>>;

    struct Entry
    {
        Future future;
        std::list<experiments::DesignKey>::iterator lruIt;
    };

    /** A ready design extracted by eviction for cold-tier demotion. */
    using Demotion =
        std::pair<experiments::DesignKey,
                  std::shared_ptr<const core::TiledDesign>>;

    /**
     * Drop least-recently-used entries beyond capacity (lock held).
     * Ready victims are appended to `demote` for the caller to spill
     * outside the lock when a cold tier is configured.
     */
    void evictLocked(std::vector<Demotion> *demote)
        SPATIAL_REQUIRES(mutex_);

    /** Spill demotion victims to the cold tier (outside the lock). */
    void demote(std::vector<Demotion> demotions)
        SPATIAL_EXCLUDES(mutex_);

    /** Admission-time JIT compile for a materialized design. */
    void admitJit(const core::TiledDesign &design)
        SPATIAL_EXCLUDES(mutex_);

    StoreOptions options_;
    std::unique_ptr<store::ColdTier> cold_; //!< null when disabled
    mutable Mutex mutex_;
    bool jitAdmission_ SPATIAL_GUARDED_BY(mutex_) = false;
    core::SimOptions jitSim_ SPATIAL_GUARDED_BY(mutex_);
    std::size_t jitMaxBatchLanes_ SPATIAL_GUARDED_BY(mutex_) = 0;
    std::unordered_map<experiments::DesignKey, Entry,
                       experiments::DesignKeyHash>
        entries_ SPATIAL_GUARDED_BY(mutex_);
    /** Keys in recency order, most recent first. */
    std::list<experiments::DesignKey> lru_ SPATIAL_GUARDED_BY(mutex_);
    std::atomic<std::size_t> hits_{0};
    std::atomic<std::size_t> misses_{0};
    std::atomic<std::size_t> evictions_{0};
    std::atomic<std::size_t> demotions_{0};
    std::atomic<std::size_t> promotions_{0};
    std::atomic<std::size_t> coldFallbacks_{0};
    /** Microseconds, so the counters stay lock-free integers. */
    std::atomic<std::uint64_t> compileMicros_{0};
    std::atomic<std::uint64_t> loadMicros_{0};
    std::atomic<std::size_t> jitAdmitted_{0};
    std::atomic<std::size_t> jitFailed_{0};
    std::atomic<std::uint64_t> jitCompileMicros_{0};
    std::atomic<std::uint64_t> faultsInjected_{0};
};

} // namespace spatial::serve

#endif // SPATIAL_SERVE_DESIGN_STORE_H
