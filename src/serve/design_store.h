/**
 * @file
 * LRU store of hot compiled designs for the serving layer.
 *
 * Serving traffic references a working set of models that changes over
 * time; unlike an offline sweep (experiments::DesignCache, which only
 * ever grows), the serving compile cache must be bounded.  The store
 * keys on the exact same identity as the sweep cache —
 * experiments::DesignKey, the matrix FNV content hash plus
 * CompileOptions — so "same design" means the same thing online and
 * offline, and reuses DesignCache::Stats as its hit/miss snapshot.
 * Note the bound is on the *cache*: callers holding a returned
 * shared_ptr (e.g. a Server, which pins every registered design for
 * its lifetime) keep evicted designs alive until they let go.
 *
 * Thread-safe.  Concurrent get()s for one key compile once: the first
 * requester owns the compilation and everyone else blocks on its
 * shared future (in-flight dedup).  Eviction is strict LRU over
 * completed entries; evicted designs stay alive for holders of the
 * returned shared_ptr.
 */

#ifndef SPATIAL_SERVE_DESIGN_STORE_H
#define SPATIAL_SERVE_DESIGN_STORE_H

#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/compiled_matrix.h"
#include "experiments/design_cache.h"
#include "matrix/dense.h"

namespace spatial::serve
{

/** Bounded LRU of compiled designs with in-flight compile dedup. */
class DesignStore
{
  public:
    /** Snapshot of the store's accounting. */
    struct Stats
    {
        /** Hit/miss counters (same struct the sweep cache exposes). */
        experiments::DesignCache::Stats cache;

        std::size_t evictions = 0; //!< entries dropped by the LRU
        std::size_t resident = 0;  //!< entries currently held
    };

    /** Store holding at most `capacity` designs (min 1). */
    explicit DesignStore(std::size_t capacity = 64);

    /**
     * The compiled design for (weights, options), compiling on first
     * request.  Never returns null; rethrows the owner's compile error
     * to every waiter and evicts the entry so later calls retry.
     */
    std::shared_ptr<const core::CompiledMatrix>
    get(const IntMatrix &weights, const core::CompileOptions &options);

    /**
     * As get(), for callers that already computed the key (avoids
     * re-hashing the matrix); `key` must equal
     * makeDesignKey(weights, options).
     */
    std::shared_ptr<const core::CompiledMatrix>
    get(const experiments::DesignKey &key, const IntMatrix &weights,
        const core::CompileOptions &options);

    /** Current accounting (counters are lock-free reads). */
    Stats stats() const;

    /** The configured capacity. */
    std::size_t capacity() const { return capacity_; }

  private:
    using Future =
        std::shared_future<std::shared_ptr<const core::CompiledMatrix>>;

    struct Entry
    {
        Future future;
        std::list<experiments::DesignKey>::iterator lruIt;
    };

    /** Drop least-recently-used entries beyond capacity (lock held). */
    void evictLocked();

    std::size_t capacity_;
    mutable std::mutex mutex_;
    std::unordered_map<experiments::DesignKey, Entry,
                       experiments::DesignKeyHash>
        entries_;
    /** Keys in recency order, most recent first. */
    std::list<experiments::DesignKey> lru_;
    std::atomic<std::size_t> hits_{0};
    std::atomic<std::size_t> misses_{0};
    std::atomic<std::size_t> evictions_{0};
};

} // namespace spatial::serve

#endif // SPATIAL_SERVE_DESIGN_STORE_H
