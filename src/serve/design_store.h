/**
 * @file
 * LRU store of hot compiled designs for the serving layer.
 *
 * Serving traffic references a working set of models that changes over
 * time; unlike an offline sweep (experiments::DesignCache, which only
 * ever grows), the serving compile cache must be bounded.  The store
 * keys on the exact same identity as the sweep cache —
 * experiments::DesignKey, the matrix FNV content hash plus
 * CompileOptions — so "same design" means the same thing online and
 * offline, and reuses DesignCache::Stats as its hit/miss snapshot.
 * Note the bound is on the *cache*: callers holding a returned
 * shared_ptr (e.g. a Server, which pins every registered design for
 * its lifetime) keep evicted designs alive until they let go.
 *
 * Thread-safe.  Concurrent get()s for one key compile once: the first
 * requester owns the compilation and everyone else blocks on its
 * shared future (in-flight dedup).  Eviction is strict LRU over
 * completed entries; evicted designs stay alive for holders of the
 * returned shared_ptr.
 */

#ifndef SPATIAL_SERVE_DESIGN_STORE_H
#define SPATIAL_SERVE_DESIGN_STORE_H

#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/compiled_matrix.h"
#include "experiments/design_cache.h"
#include "matrix/dense.h"

namespace spatial::serve
{

/** Bounded LRU of compiled designs with in-flight compile dedup. */
class DesignStore
{
  public:
    /** Snapshot of the store's accounting. */
    struct Stats
    {
        /** Hit/miss counters (same struct the sweep cache exposes). */
        experiments::DesignCache::Stats cache;

        std::size_t evictions = 0; //!< entries dropped by the LRU
        std::size_t resident = 0;  //!< entries currently held

        /** Designs that left admission with a JIT module attached. */
        std::size_t jitAdmitted = 0;

        /**
         * Designs whose JIT admission produced no module (toolchain
         * missing or compile failed); they serve on the interpreted
         * tape.
         */
        std::size_t jitFailed = 0;

        /**
         * Total wall-clock seconds spent in admission-time JIT
         * compiles (generation + out-of-process cc), across designs.
         */
        double jitCompileSeconds = 0.0;
    };

    /** Store holding at most `capacity` designs (min 1). */
    explicit DesignStore(std::size_t capacity = 64);

    /**
     * The compiled design for (weights, options), compiling on first
     * request.  Never returns null; rethrows the owner's compile error
     * to every waiter and evicts the entry so later calls retry.
     */
    std::shared_ptr<const core::CompiledMatrix>
    get(const IntMatrix &weights, const core::CompileOptions &options);

    /**
     * As get(), for callers that already computed the key (avoids
     * re-hashing the matrix); `key` must equal
     * makeDesignKey(weights, options).
     */
    std::shared_ptr<const core::CompiledMatrix>
    get(const experiments::DesignKey &key, const IntMatrix &weights,
        const core::CompileOptions &options);

    /**
     * Enable admission-time JIT compilation: every design compiled
     * after this call also gets native modules (CompiledMatrix::
     * ensureJit) for `sim`'s execution mode at W = 1 plus the widest
     * lane-word count the engine resolves for a full batch of
     * `max_batch_lanes` vectors — the sequential-executor and
     * full-group hot paths.  The JIT compile rides the store's
     * in-flight dedup (the compile owner does it once; waiters block
     * on the same future), so an admission storm never compiles a
     * design's modules twice.  Admission failures are counted, not
     * raised: the design serves on the interpreted tape.  Eviction
     * simply drops the store's reference — when the last holder lets
     * go, the modules' destructors dlclose their handles (the temp
     * artifacts were already unlinked at load), so eviction storms
     * leak neither fds nor disk.
     */
    void setJitAdmission(const core::SimOptions &sim,
                         std::size_t max_batch_lanes);

    /** Current accounting (counters are lock-free reads). */
    Stats stats() const;

    /** The configured capacity. */
    std::size_t capacity() const { return capacity_; }

  private:
    using Future =
        std::shared_future<std::shared_ptr<const core::CompiledMatrix>>;

    struct Entry
    {
        Future future;
        std::list<experiments::DesignKey>::iterator lruIt;
    };

    /** Drop least-recently-used entries beyond capacity (lock held). */
    void evictLocked();

    /** Admission-time JIT compile for a freshly built design. */
    void admitJit(const core::CompiledMatrix &design);

    std::size_t capacity_;
    bool jitAdmission_ = false;        //!< guarded by mutex_
    core::SimOptions jitSim_;          //!< guarded by mutex_
    std::size_t jitMaxBatchLanes_ = 0; //!< guarded by mutex_
    mutable std::mutex mutex_;
    std::unordered_map<experiments::DesignKey, Entry,
                       experiments::DesignKeyHash>
        entries_;
    /** Keys in recency order, most recent first. */
    std::list<experiments::DesignKey> lru_;
    std::atomic<std::size_t> hits_{0};
    std::atomic<std::size_t> misses_{0};
    std::atomic<std::size_t> evictions_{0};
    std::atomic<std::size_t> jitAdmitted_{0};
    std::atomic<std::size_t> jitFailed_{0};
    /** Microseconds, so the counter can stay a lock-free integer. */
    std::atomic<std::uint64_t> jitCompileMicros_{0};
};

} // namespace spatial::serve

#endif // SPATIAL_SERVE_DESIGN_STORE_H
