#include "serve/net_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "analysis/verifier.h"
#include "common/fault.h"
#include "common/logging.h"
#include "core/compiler.h"

namespace spatial::serve
{

namespace
{

/** Read chunk size of the event loop. */
constexpr std::size_t kReadChunk = 64 * 1024;

/** Per-connection outbound buffer cap; beyond it the peer is dropped
 * as an unrecoverable slow reader. */
constexpr std::size_t kMaxConnBuf = 256u << 20;

/** How long the drain waits for write buffers to flush. */
constexpr auto kFlushDeadline = std::chrono::seconds(10);

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

NetServer::NetServer(NetServerOptions options) : options_(options)
{
    options_.shards = std::max<std::size_t>(1, options_.shards);
    options_.maxFrameBytes = std::min(
        std::max(options_.maxFrameBytes,
                 static_cast<std::uint32_t>(wire::kHeaderBytes)),
        wire::kMaxFrameBytes);

    // Shards first: each is a full in-process Server with its own
    // DesignStore and worker pool.
    shards_.reserve(options_.shards);
    for (std::size_t s = 0; s < options_.shards; ++s) {
        auto shard = std::make_unique<Shard>();
        shard->server = std::make_unique<Server>(options_.serve);
        shards_.push_back(std::move(shard));
    }

    // Listen socket: SO_REUSEADDR + port 0 (ephemeral by default) keep
    // test suites parallel-safe; the resolved port is exported via
    // port().
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        SPATIAL_FATAL("socket(): ", std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) !=
        1)
        SPATIAL_FATAL("bad listen address '", options_.host, "'");
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        SPATIAL_FATAL("bind(", options_.host, ":", options_.port,
                      "): ", std::strerror(errno));
    if (::listen(listenFd_, 128) != 0)
        SPATIAL_FATAL("listen(): ", std::strerror(errno));
    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        SPATIAL_FATAL("getsockname(): ", std::strerror(errno));
    port_ = ntohs(addr.sin_port);
    setNonBlocking(listenFd_);

    if (::pipe(wakePipe_) != 0)
        SPATIAL_FATAL("pipe(): ", std::strerror(errno));
    setNonBlocking(wakePipe_[0]);
    setNonBlocking(wakePipe_[1]);

    for (std::size_t s = 0; s < shards_.size(); ++s)
        shards_[s]->reaper =
            std::thread([this, s] { reaperLoop(s); });
    registrar_ = std::thread([this] { registrarLoop(); });
    loop_ = std::thread([this] { eventLoop(); });
}

NetServer::~NetServer()
{
    shutdown();
}

void
NetServer::wake()
{
    const char byte = 'w';
    [[maybe_unused]] ssize_t n = ::write(wakePipe_[1], &byte, 1);
}

void
NetServer::requestShutdown()
{
    shutdownRequested_.store(true, std::memory_order_release);
    wake(); // write() is async-signal-safe; the loop does the rest
}

void
NetServer::waitUntilStopped()
{
    {
        MutexLock lock(shutdownMutex_);
        while (!rejecting_.load() && !shutdownDone_)
            shutdownCv_.wait(shutdownMutex_);
    }
    shutdown();
}

void
NetServer::shutdown()
{
    {
        MutexLock lock(shutdownMutex_);
        if (shutdownDone_)
            return;
        if (shutdownRunning_) {
            while (!shutdownDone_)
                shutdownCv_.wait(shutdownMutex_);
            return;
        }
        shutdownRunning_ = true;
    }

    // 1. Stop admitting: the event loop (the only thread that
    //    dispatches) flips rejecting_ when it sees the request, so
    //    once we observe it no further work can enter a shard.
    requestShutdown();
    {
        MutexLock lock(shutdownMutex_);
        while (!rejecting_.load())
            shutdownCv_.wait(shutdownMutex_);
    }

    // 2. Registrar: finish queued compiles, then stop.
    {
        MutexLock lock(registrarMutex_);
        registrarStop_ = true;
    }
    registrarCv_.notify_all();
    registrar_.join();

    // 3. Shards: flush open batch groups, wait for every admitted
    //    request to be answered, then stop the reapers.  With a
    //    drain deadline configured the wait is bounded: once it
    //    expires, the reapers abandon the remaining futures and
    //    answer them ShuttingDown, so a wedged or fault-stalled
    //    worker cannot pin the shutdown forever.
    const bool bounded = options_.drainTimeout.count() > 0;
    const auto deadline =
        std::chrono::steady_clock::now() + options_.drainTimeout;
    for (auto &shard : shards_) {
        if (bounded) {
            const auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
            if (!shard->server->drainFor(
                    std::max(std::chrono::milliseconds(0), left)))
                SPATIAL_WARN("drain deadline expired with shard work ",
                             "still queued; abandoning it");
        } else {
            shard->server->drain();
        }
        MutexLock lock(shard->mutex);
        while (!shard->completions.empty() ||
               shard->inFlight.load() != 0) {
            if (!bounded) {
                shard->cv.wait(shard->mutex);
                continue;
            }
            if (shard->abandon.load(std::memory_order_acquire)) {
                // Deadline already declared; the reaper is flushing
                // ShuttingDown answers — keep waiting for inFlight
                // to reach zero (bounded by the reaper's 50ms wait
                // slices, not by the stalled work itself).
                shard->cv.wait(shard->mutex);
                continue;
            }
            if (shard->cv.wait_until(shard->mutex, deadline) ==
                    std::cv_status::timeout &&
                (!shard->completions.empty() ||
                 shard->inFlight.load() != 0)) {
                SPATIAL_WARN("drain deadline expired; answering ",
                             shard->inFlight.load(),
                             " in-flight request(s) ShuttingDown");
                shard->abandon.store(true, std::memory_order_release);
                shard->cv.notify_all();
            }
        }
        shard->stop = true;
        shard->cv.notify_all();
    }
    for (auto &shard : shards_)
        shard->reaper.join();

    // 4. Event loop: flush outbound buffers, close connections, exit.
    loopExit_.store(true, std::memory_order_release);
    wake();
    loop_.join();

    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    ::close(wakePipe_[0]);
    ::close(wakePipe_[1]);

    {
        MutexLock lock(shutdownMutex_);
        shutdownDone_ = true;
    }
    shutdownCv_.notify_all();
}

NetServerStats
NetServer::stats() const
{
    NetServerStats stats;
    stats.accepted = accepted_.load();
    stats.badFrames = badFrames_.load();
    {
        MutexLock lock(connMutex_);
        stats.active = conns_.size();
    }
    {
        MutexLock lock(designMutex_);
        stats.registered = designs_.size();
    }
    stats.shards.reserve(shards_.size());
    for (const auto &shard : shards_) {
        ShardStats s;
        s.submitted = shard->submitted.load();
        s.shed = shard->shed.load();
        s.inFlight = shard->inFlight.load();
        s.server = shard->server->stats();
        stats.shards.push_back(std::move(s));
    }
    return stats;
}

IntMatrix
NetServer::statsMatrix() const
{
    IntMatrix m(shards_.size(), wire::kShardStatsCols);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        const ServerStats server = shards_[s]->server->stats();
        m.at(s, wire::kStatRequests) =
            static_cast<std::int64_t>(server.requests);
        m.at(s, wire::kStatLanes) =
            static_cast<std::int64_t>(server.lanes);
        m.at(s, wire::kStatPaddedLanes) =
            static_cast<std::int64_t>(server.paddedLanes);
        m.at(s, wire::kStatGroups) =
            static_cast<std::int64_t>(server.groups);
        m.at(s, wire::kStatSequences) =
            static_cast<std::int64_t>(server.sequences);
        m.at(s, wire::kStatSubmitted) =
            static_cast<std::int64_t>(shards_[s]->submitted.load());
        m.at(s, wire::kStatShed) =
            static_cast<std::int64_t>(shards_[s]->shed.load());
        m.at(s, wire::kStatInFlight) =
            static_cast<std::int64_t>(shards_[s]->inFlight.load());
        m.at(s, wire::kStatStoreHits) =
            static_cast<std::int64_t>(server.store.cache.hits);
        m.at(s, wire::kStatStoreMisses) =
            static_cast<std::int64_t>(server.store.cache.misses);
        m.at(s, wire::kStatStorePromotions) =
            static_cast<std::int64_t>(server.store.promotions);
        m.at(s, wire::kStatStoreDemotions) =
            static_cast<std::int64_t>(server.store.demotions);
        m.at(s, wire::kStatWatchdogShed) =
            static_cast<std::int64_t>(server.watchdogShed);
        m.at(s, wire::kStatFaultsInjected) =
            static_cast<std::int64_t>(server.faultsInjected);
    }
    return m;
}

void
NetServer::replyFrame(std::uint64_t conn, const wire::ResponseFrame &f)
{
    MutexLock lock(connMutex_);
    const auto it = conns_.find(conn);
    if (it == conns_.end())
        return; // peer went away; drop the response
    Connection &c = it->second;
    if (c.closing)
        return; // already being torn down; drop the response
    if (c.out.size() - c.outSent > kMaxConnBuf) {
        // Unrecoverable slow reader: free its backlog right away and
        // let the event loop's close sweep drop the socket on its next
        // pass — waiting for a flush the peer may never perform would
        // pin the whole buffer indefinitely.
        c.closing = true;
        c.out.clear();
        c.outSent = 0;
        wake();
        return;
    }
    wire::appendResponseFrame(c.out, f);
    wake();
}

void
NetServer::asyncBegin(std::uint64_t conn)
{
    MutexLock lock(connMutex_);
    const auto it = conns_.find(conn);
    if (it != conns_.end())
        ++it->second.pendingReplies;
}

void
NetServer::asyncDone(std::uint64_t conn)
{
    {
        MutexLock lock(connMutex_);
        const auto it = conns_.find(conn);
        if (it == conns_.end())
            return;
        if (it->second.pendingReplies > 0)
            --it->second.pendingReplies;
    }
    wake(); // a half-closed peer may now be closable
}

void
NetServer::replyStatus(std::uint64_t conn, wire::Status status,
                       wire::MessageKind kind,
                       std::uint64_t request_id,
                       std::uint32_t design_id)
{
    wire::ResponseFrame f;
    f.status = status;
    f.kind = kind;
    f.requestId = request_id;
    f.designId = design_id;
    replyFrame(conn, f);
}

void
NetServer::dispatch(std::uint64_t conn, wire::RequestFrame frame)
{
    using wire::MessageKind;
    using wire::Status;

    // Injection site: the connection dies mid-request (peer crash /
    // network partition model).  The frame is swallowed and the
    // socket torn down exactly as the slow-reader path does it; the
    // client sees a dropped connection and its outstanding requests
    // resolve Disconnected (or replay, with reconnect enabled).
    if (fault::injectFault(fault::Site::NetConnDrop)) {
        MutexLock lock(connMutex_);
        const auto it = conns_.find(conn);
        if (it != conns_.end()) {
            it->second.closing = true;
            it->second.out.clear();
            it->second.outSent = 0;
        }
        wake();
        return;
    }

    // Liveness and observability stay answerable during a drain.
    if (frame.kind == MessageKind::Ping) {
        wire::ResponseFrame f;
        f.status = Status::Ok;
        f.kind = frame.kind;
        f.requestId = frame.requestId;
        f.designId = frame.designId;
        replyFrame(conn, f);
        return;
    }
    if (frame.kind == MessageKind::Stats) {
        wire::ResponseFrame f;
        f.status = Status::Ok;
        f.kind = frame.kind;
        f.requestId = frame.requestId;
        f.designId = frame.designId;
        f.output = statsMatrix();
        replyFrame(conn, f);
        return;
    }

    if (rejecting_.load(std::memory_order_acquire)) {
        replyStatus(conn, Status::ShuttingDown, frame.kind,
                    frame.requestId, frame.designId);
        return;
    }

    if (frame.kind == MessageKind::RegisterDesign) {
        // Admission budget: an over-dim design is rejected before its
        // (potentially enormous) compile can be queued; the client
        // gets a clean BadRequest instead of a dropped connection.
        if (options_.maxRegisterDim != 0 &&
            (frame.weights.rows() > options_.maxRegisterDim ||
             frame.weights.cols() > options_.maxRegisterDim)) {
            replyStatus(conn, Status::BadRequest, frame.kind,
                        frame.requestId, frame.designId);
            return;
        }
        RegisterJob job;
        job.conn = conn;
        job.requestId = frame.requestId;
        job.weights = std::move(frame.weights);
        job.compile = frame.compile;
        {
            MutexLock lock(designMutex_);
            const auto key = experiments::makeDesignKey(job.weights,
                                                        job.compile);
            const auto it = designIds_.find(key);
            if (it != designIds_.end() && designs_[it->second].ready) {
                // Identical design already admitted: answer directly.
                wire::ResponseFrame f;
                f.status = Status::Ok;
                f.kind = frame.kind;
                f.requestId = frame.requestId;
                f.designId = it->second;
                f.output = IntMatrix(1, 1);
                f.output.at(0, 0) = static_cast<std::int64_t>(
                    designs_[it->second].shard);
                replyFrame(conn, f);
                return;
            }
            if (it != designIds_.end()) {
                job.designId = it->second;
            } else {
                job.designId =
                    static_cast<std::uint32_t>(designs_.size());
                DesignRoute route;
                route.shard = designs_.size() % shards_.size();
                route.rows = job.weights.rows();
                route.cols = job.weights.cols();
                designs_.push_back(route);
                designIds_.emplace(key, job.designId);
            }
        }
        asyncBegin(conn);
        {
            MutexLock lock(registrarMutex_);
            registerQueue_.push_back(std::move(job));
        }
        registrarCv_.notify_one();
        return;
    }

    // Compute kinds: validate against the routing table, admit or
    // shed, and submit into the owning shard's Server.
    DesignRoute route;
    bool known = false;
    {
        MutexLock lock(designMutex_);
        // Rejected registrations keep their table slot (ids are dense)
        // but never become routable.
        if (frame.designId < designs_.size() &&
            !designs_[frame.designId].failed) {
            route = designs_[frame.designId];
            known = true;
        }
    }
    if (!known) {
        replyStatus(conn, Status::UnknownDesign, frame.kind,
                    frame.requestId, frame.designId);
        return;
    }
    if (!route.ready) {
        // Registration still compiling; the client is expected to wait
        // for its RegisterDesign response, so this is load it can
        // safely retry.
        replyStatus(conn, Status::Busy, frame.kind, frame.requestId,
                    frame.designId);
        return;
    }
    const wire::Status valid =
        wire::validateRequest(frame.request, route.rows, route.cols);
    if (valid != Status::Ok) {
        replyStatus(conn, valid, frame.kind, frame.requestId,
                    frame.designId);
        return;
    }

    Shard &shard = *shards_[route.shard];
    if (options_.maxQueue != 0 &&
        shard.inFlight.load(std::memory_order_relaxed) >=
            options_.maxQueue) {
        shard.shed.fetch_add(1, std::memory_order_relaxed);
        replyStatus(conn, Status::Busy, frame.kind, frame.requestId,
                    frame.designId);
        return;
    }
    shard.inFlight.fetch_add(1, std::memory_order_relaxed);
    shard.submitted.fetch_add(1, std::memory_order_relaxed);
    asyncBegin(conn);

    PendingReply reply;
    reply.conn = conn;
    reply.requestId = frame.requestId;
    reply.designId = frame.designId;
    reply.kind = frame.kind;
    reply.future =
        shard.server->submit(route.localId, std::move(frame.request));
    {
        MutexLock lock(shard.mutex);
        shard.completions.push_back(std::move(reply));
    }
    shard.cv.notify_all();
}

void
NetServer::reaperLoop(std::size_t shard_index)
{
    Shard &shard = *shards_[shard_index];
    for (;;) {
        PendingReply reply;
        {
            MutexLock lock(shard.mutex);
            while (shard.completions.empty() && !shard.stop)
                shard.cv.wait(shard.mutex);
            if (shard.completions.empty() && shard.stop)
                return;
            reply = std::move(shard.completions.front());
            shard.completions.pop_front();
        }
        // Wait outside the lock: groups complete in batches, so FIFO
        // blocking here costs nothing — every future behind this one
        // is already being worked on by the shard's pool.  The wait
        // is sliced so an expired drain deadline (abandon) can cut
        // in: the peer then gets ShuttingDown now instead of a reply
        // that would arrive only if a wedged worker recovers.
        wire::ResponseFrame f;
        f.kind = reply.kind;
        f.requestId = reply.requestId;
        f.designId = reply.designId;
        bool abandoned =
            shard.abandon.load(std::memory_order_acquire);
        while (!abandoned &&
               reply.future.wait_for(std::chrono::milliseconds(50)) !=
                   std::future_status::ready)
            abandoned = shard.abandon.load(std::memory_order_acquire);
        if (abandoned) {
            f.status = wire::Status::ShuttingDown;
        } else {
            Response response = reply.future.get();
            if (response.shed) {
                // Watchdog sheds travel in-process as Response::shed;
                // on the wire they are ordinary Busy answers the
                // client is free to retry.
                f.status = wire::Status::Busy;
            } else {
                f.status = wire::Status::Ok;
                f.output = std::move(response.output);
            }
        }
        replyFrame(reply.conn, f);
        asyncDone(reply.conn);
        shard.inFlight.fetch_sub(1, std::memory_order_relaxed);
        shard.cv.notify_all(); // shutdown() waits on inFlight == 0
    }
}

void
NetServer::registrarLoop()
{
    for (;;) {
        RegisterJob job;
        {
            MutexLock lock(registrarMutex_);
            while (registerQueue_.empty() && !registrarStop_)
                registrarCv_.wait(registrarMutex_);
            if (registerQueue_.empty()) {
                if (registrarStop_)
                    return;
                continue;
            }
            job = std::move(registerQueue_.front());
            registerQueue_.pop_front();
        }
        std::size_t shard_index;
        {
            MutexLock lock(designMutex_);
            shard_index = designs_[job.designId].shard;
        }
        // The compiler enforces its preconditions with SPATIAL_FATAL —
        // acceptable for a local misconfiguration, not for bytes off
        // the wire.  Re-check them non-fatally through the static
        // verifier and answer BadRequest with the named diagnostic,
        // so no remote registration can terminate the server.
        const analysis::Report rejected =
            analysis::verifyCompileRequest(job.compile, job.weights);
        if (!rejected.ok()) {
            {
                MutexLock lock(designMutex_);
                designs_[job.designId].failed = true;
            }
            SPATIAL_WARN("rejecting design registration ", job.designId,
                         ": ", rejected.diagnostics.front().str());
            replyStatus(job.conn, wire::Status::BadRequest,
                        wire::MessageKind::RegisterDesign,
                        job.requestId, job.designId);
            asyncDone(job.conn);
            continue;
        }
        // The compile (potentially seconds at large dims) runs here,
        // never on the event loop.
        const DesignId local =
            shards_[shard_index]->server->registerDesign(job.weights,
                                                         job.compile);
        {
            MutexLock lock(designMutex_);
            designs_[job.designId].localId = local;
            designs_[job.designId].ready = true;
        }
        wire::ResponseFrame f;
        f.status = wire::Status::Ok;
        f.kind = wire::MessageKind::RegisterDesign;
        f.requestId = job.requestId;
        f.designId = job.designId;
        f.output = IntMatrix(1, 1);
        f.output.at(0, 0) = static_cast<std::int64_t>(shard_index);
        replyFrame(job.conn, f);
        asyncDone(job.conn);
    }
}

void
NetServer::processInbound(std::uint64_t id, Connection &conn)
{
    std::size_t consumed = 0;
    for (;;) {
        std::size_t payload_off = 0, payload_size = 0, frame_size = 0;
        const wire::FrameResult r = wire::peekFrame(
            conn.in.data() + consumed, conn.in.size() - consumed,
            &payload_off, &payload_size, &frame_size,
            options_.maxFrameBytes);
        if (r == wire::FrameResult::NeedMore)
            break;
        if (r == wire::FrameResult::Malformed) {
            // Framing is lost: answer once, then drop the peer.  The
            // flag is shared with the reply paths, so flip it under
            // connMutex_ (and after the reply — replyFrame drops
            // frames for closing connections).
            badFrames_.fetch_add(1, std::memory_order_relaxed);
            replyStatus(id, wire::Status::BadFrame,
                        wire::MessageKind::Ping, 0, 0);
            {
                MutexLock lock(connMutex_);
                conn.closing = true;
            }
            conn.in.clear();
            return;
        }
        wire::RequestFrame frame;
        const wire::Status decoded = wire::decodeRequest(
            conn.in.data() + consumed + payload_off, payload_size,
            &frame);
        if (decoded == wire::Status::Ok) {
            dispatch(id, std::move(frame));
        } else {
            replyStatus(id, decoded, frame.kind, frame.requestId,
                        frame.designId);
            if (decoded == wire::Status::BadFrame ||
                decoded == wire::Status::BadVersion) {
                // The payload contradicted its own layout; stop
                // trusting the stream.
                badFrames_.fetch_add(1, std::memory_order_relaxed);
                {
                    MutexLock lock(connMutex_);
                    conn.closing = true;
                }
                conn.in.clear();
                return;
            }
        }
        consumed += frame_size;
    }
    if (consumed > 0)
        conn.in.erase(conn.in.begin(),
                      conn.in.begin() +
                          static_cast<std::ptrdiff_t>(consumed));
}

void
NetServer::eventLoop()
{
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> ids; // conn id per pollfd (0 = control)
    bool listen_open = true;
    bool flushing = false;
    std::chrono::steady_clock::time_point flush_start{};

    for (;;) {
        fds.clear();
        ids.clear();
        if (listen_open) {
            fds.push_back({listenFd_, POLLIN, 0});
            ids.push_back(0);
        }
        fds.push_back({wakePipe_[0], POLLIN, 0});
        ids.push_back(0);
        bool all_flushed = true;
        {
            MutexLock lock(connMutex_);
            // Close sweep: a connection leaves once its outbound bytes
            // are flushed and either the protocol broke (closing) or
            // the peer half-closed and every owed reply was delivered
            // (peerEof, the NetClient::close() drain contract).  The
            // reply paths wake() the loop, so this runs promptly after
            // the last owed reply or pendingReplies decrement.
            std::vector<std::uint64_t> closable;
            for (auto &[id, conn] : conns_) {
                const bool flushed = conn.outSent == conn.out.size();
                if (flushed &&
                    (conn.closing ||
                     (conn.peerEof && conn.pendingReplies == 0))) {
                    closable.push_back(id);
                    continue;
                }
                // No POLLIN once the stream is done (EOF would fire
                // forever) or distrusted; POLLERR/POLLHUP still
                // surface a fully-gone peer even with no event bits.
                short events = 0;
                if (!conn.closing && !conn.peerEof)
                    events |= POLLIN;
                if (!flushed) {
                    events |= POLLOUT;
                    all_flushed = false;
                }
                fds.push_back({conn.fd, events, 0});
                ids.push_back(id);
            }
            for (const std::uint64_t id : closable) {
                const auto it = conns_.find(id);
                ::close(it->second.fd);
                conns_.erase(it);
            }
        }

        if (loopExit_.load(std::memory_order_acquire)) {
            if (!flushing) {
                flushing = true;
                flush_start = std::chrono::steady_clock::now();
            }
            if (all_flushed ||
                std::chrono::steady_clock::now() - flush_start >
                    kFlushDeadline) {
                MutexLock lock(connMutex_);
                for (auto &[id, conn] : conns_)
                    ::close(conn.fd);
                conns_.clear();
                return;
            }
        }

        const int ready = ::poll(fds.data(),
                                 static_cast<nfds_t>(fds.size()), 100);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            SPATIAL_FATAL("poll(): ", std::strerror(errno));
        }

        std::vector<std::uint64_t> dead;
        for (std::size_t i = 0; i < fds.size(); ++i) {
            const pollfd &p = fds[i];
            if (p.revents == 0)
                continue;
            if (p.fd == wakePipe_[0]) {
                char buf[64];
                while (::read(wakePipe_[0], buf, sizeof(buf)) > 0) {
                }
                if (shutdownRequested_.load(
                        std::memory_order_acquire) &&
                    !rejecting_.load()) {
                    // Stop accepting; existing traffic now gets
                    // ShuttingDown from dispatch().
                    rejecting_.store(true, std::memory_order_release);
                    if (listen_open) {
                        ::close(listenFd_);
                        listenFd_ = -1;
                        listen_open = false;
                    }
                    // Lock-then-notify so a waiter that just checked
                    // the predicate cannot miss the wakeup.
                    { MutexLock lk(shutdownMutex_); }
                    shutdownCv_.notify_all();
                }
                continue;
            }
            if (listen_open && p.fd == listenFd_) {
                // Injection site: a stalled accept path (overloaded
                // kernel / SYN backlog model).  The sleep happens on
                // the event loop on purpose — that is exactly what a
                // slow accept costs a single-threaded front end.
                if (const std::uint64_t delay_ms = fault::injectFaultParam(
                        fault::Site::NetAcceptDelay))
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(delay_ms));
                for (;;) {
                    const int fd = ::accept(listenFd_, nullptr, nullptr);
                    if (fd < 0)
                        break;
                    setNonBlocking(fd);
                    setNoDelay(fd);
                    accepted_.fetch_add(1, std::memory_order_relaxed);
                    MutexLock lock(connMutex_);
                    Connection conn;
                    conn.fd = fd;
                    conns_.emplace(nextConn_++, std::move(conn));
                }
                continue;
            }

            const std::uint64_t id = ids[i];
            // Only this thread inserts or erases connections, so the
            // pointer stays valid after the lookup; `in` and `fd` are
            // touched by this thread alone, while `out`/`outSent`/
            // `closing` are shared with the reply paths and accessed
            // under connMutex_.
            Connection *conn = nullptr;
            {
                MutexLock lock(connMutex_);
                const auto it = conns_.find(id);
                if (it == conns_.end())
                    continue;
                conn = &it->second;
            }
            bool drop = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) &&
                        !(p.revents & POLLIN);
            bool eof = false;
            if (p.revents & POLLIN) {
                std::uint8_t chunk[kReadChunk];
                for (;;) {
                    const ssize_t n =
                        ::read(conn->fd, chunk, sizeof(chunk));
                    if (n > 0) {
                        conn->in.insert(conn->in.end(), chunk,
                                        chunk + n);
                        if (n < static_cast<ssize_t>(sizeof(chunk)))
                            break;
                        continue;
                    }
                    if (n == 0) {
                        eof = true; // peer finished sending
                        break;
                    }
                    if (errno == EAGAIN || errno == EWOULDBLOCK)
                        break;
                    drop = true;
                    break;
                }
                // Parse whatever arrived before a pending EOF too: a
                // half-closing peer is owed responses for everything
                // it sent (NetClient::close() drains them), so those
                // requests dispatch normally and the close sweep holds
                // the connection until their replies flush.
                if (!flushing)
                    processInbound(id, *conn);
                if (eof) {
                    MutexLock lock(connMutex_);
                    conn->peerEof = true;
                }
            }
            {
                MutexLock lock(connMutex_);
                if ((p.revents & POLLOUT) &&
                    conn->outSent < conn->out.size()) {
                    std::size_t chunk = conn->out.size() - conn->outSent;
                    // Injection site: the kernel accepts only a few
                    // bytes per send (tiny socket buffer model), so
                    // responses trickle out across many poll rounds
                    // and clients exercise their partial-frame
                    // reassembly.
                    if (const std::uint64_t cap = fault::injectFaultParam(
                            fault::Site::NetWritePartial))
                        chunk = std::min<std::size_t>(chunk, cap);
                    const ssize_t n = ::send(
                        conn->fd, conn->out.data() + conn->outSent,
                        chunk, MSG_NOSIGNAL);
                    if (n > 0) {
                        conn->outSent += static_cast<std::size_t>(n);
                        if (conn->outSent == conn->out.size()) {
                            conn->out.clear();
                            conn->outSent = 0;
                        }
                    } else if (n < 0 && errno != EAGAIN &&
                               errno != EWOULDBLOCK) {
                        drop = true;
                    }
                }
            }
            // Flushed closing/peerEof connections are reaped by the
            // close sweep at the top of the next iteration.
            if (drop)
                dead.push_back(id);
        }
        if (!dead.empty()) {
            MutexLock lock(connMutex_);
            for (const std::uint64_t id : dead) {
                const auto it = conns_.find(id);
                if (it == conns_.end())
                    continue;
                ::close(it->second.fd);
                conns_.erase(it);
            }
        }
    }
}

} // namespace spatial::serve
