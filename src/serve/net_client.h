/**
 * @file
 * Client side of the wire protocol: a connection to one NetServer.
 *
 * One NetClient owns one TCP connection plus a reader thread that
 * decodes response frames and matches them to outstanding requests by
 * correlation id, so any number of submit() calls can be in flight
 * concurrently (the load generator pipelines thousands).  Writes are
 * serialized by a send mutex; the socket itself is blocking, which
 * gives the client natural backpressure if the server's socket buffers
 * fill while its admission control is shedding.
 *
 * Thread-safe: submit()/registerDesign()/ping()/fetchStats() may be
 * called from any number of threads.  If the connection drops, every
 * outstanding and future request resolves with
 * wire::Status::Disconnected instead of blocking forever.
 */

#ifndef SPATIAL_SERVE_NET_CLIENT_H
#define SPATIAL_SERVE_NET_CLIENT_H

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/sync.h"
#include "serve/wire.h"

namespace spatial::serve
{

/** The outcome of one remote request. */
struct RemoteResult
{
    /** Wire status (Ok, Busy, ... or the synthetic Disconnected). */
    wire::Status status = wire::Status::Disconnected;

    /** Output matrix; meaningful only when status == Ok. */
    IntMatrix output;

    std::chrono::time_point<Clock> submitAt{}; //!< send timestamp
    std::chrono::time_point<Clock> doneAt{};   //!< response received

    /** Client-observed round-trip latency in seconds. */
    double latencySeconds() const
    {
        return std::chrono::duration<double>(doneAt - submitAt).count();
    }
};

/** A blocking-connect client for one NetServer. */
class NetClient
{
  public:
    /** Connect to host:port; fatal on connection failure. */
    NetClient(const std::string &host, std::uint16_t port);

    /** Close the connection and join the reader. */
    ~NetClient();

    /** Non-copyable: owns the socket and reader thread. */
    NetClient(const NetClient &) = delete;
    /** Non-assignable (same reason). */
    NetClient &operator=(const NetClient &) = delete;

    /** True while the connection is up. */
    bool connected() const;

    /**
     * Register a design and wait for the server's answer.  On Ok,
     * `*id` receives the server-assigned design id and `*shard` (when
     * non-null) the owning shard.
     */
    wire::Status registerDesign(const IntMatrix &weights,
                                const core::CompileOptions &compile,
                                std::uint32_t *id,
                                std::uint32_t *shard = nullptr);

    /**
     * Send one compute request; the future resolves when the response
     * frame arrives (any status, including Busy sheds).
     */
    std::future<RemoteResult> submit(std::uint32_t design,
                                     Request request);

    /** Round-trip an empty Ping frame. */
    wire::Status ping();

    /**
     * Fetch the server's per-shard counters: one row per shard,
     * columns per wire::ShardStatsCol.
     */
    wire::Status fetchStats(IntMatrix *out);

    /**
     * Half-close: stop sending and fail outstanding requests once the
     * server's remaining responses have been read.  Idempotent.
     */
    void close();

  private:
    struct Pending
    {
        std::promise<RemoteResult> promise;
        std::chrono::time_point<Clock> submitAt{};
    };

    /** Send one encoded frame; false once disconnected. */
    bool sendFrame(const wire::RequestFrame &frame)
        SPATIAL_EXCLUDES(sendMutex_);

    /** Reader thread: decode responses, resolve pending promises. */
    void readerLoop() SPATIAL_EXCLUDES(pendingMutex_);

    /** Fail every outstanding request with Disconnected. */
    void failAll() SPATIAL_EXCLUDES(pendingMutex_);

    /** Submit and wait for a one-shot control request. */
    RemoteResult roundTrip(wire::RequestFrame frame);

    int fd_ = -1; //!< immutable while the reader thread lives
    std::atomic<bool> connected_{false};
    Mutex sendMutex_;    //!< serializes whole-frame socket writes
    Mutex pendingMutex_;
    std::unordered_map<std::uint64_t, Pending> pending_
        SPATIAL_GUARDED_BY(pendingMutex_);
    std::atomic<std::uint64_t> nextId_{1};
    std::thread reader_;
};

/**
 * Parse a "host:port" endpoint string (the --remote CLI syntax);
 * fatal on malformed input.
 */
void parseEndpoint(const std::string &endpoint, std::string *host,
                   std::uint16_t *port);

} // namespace spatial::serve

#endif // SPATIAL_SERVE_NET_CLIENT_H
