/**
 * @file
 * Client side of the wire protocol: a connection to one NetServer.
 *
 * One NetClient owns one TCP connection plus a reader thread that
 * decodes response frames and matches them to outstanding requests by
 * correlation id, so any number of submit() calls can be in flight
 * concurrently (the load generator pipelines thousands).  Writes are
 * serialized by a send mutex; the socket itself is blocking, which
 * gives the client natural backpressure if the server's socket buffers
 * fill while its admission control is shedding.
 *
 * Degradation machinery (all off by default, see NetClientOptions):
 *
 * - **Per-request timeouts**: a monitor thread resolves compute
 *   requests older than `requestTimeout` with the client-synthetic
 *   wire::Status::TimedOut instead of letting a stalled server hold
 *   the future forever; a late response for a timed-out id is
 *   discarded on arrival.
 * - **Reconnect-and-replay**: with `maxReconnects > 0`, an unexpected
 *   disconnect makes the reader redial (jittered exponential backoff
 *   between attempts) and replay every outstanding request frame in
 *   submit order on the fresh connection.  Compute requests and
 *   registrations are idempotent — re-executing a GEMV or
 *   re-registering a design is harmless — which is what makes blind
 *   replay sound.
 * - **submitRetry()**: a blocking convenience that retries Busy/
 *   TimedOut responses with jittered exponential backoff, the polite
 *   way to drain work through an overloaded server.
 *
 * Thread-safe: submit()/registerDesign()/ping()/fetchStats() may be
 * called from any number of threads.  If the connection drops for
 * good (no reconnect budget, or close() was called), every
 * outstanding and future request resolves with
 * wire::Status::Disconnected instead of blocking forever.
 */

#ifndef SPATIAL_SERVE_NET_CLIENT_H
#define SPATIAL_SERVE_NET_CLIENT_H

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/sync.h"
#include "serve/wire.h"

namespace spatial::serve
{

/** The outcome of one remote request. */
struct RemoteResult
{
    /** Wire status (Ok, Busy, ... or synthetic TimedOut/Disconnected). */
    wire::Status status = wire::Status::Disconnected;

    /** Output matrix; meaningful only when status == Ok. */
    IntMatrix output;

    std::chrono::time_point<Clock> submitAt{}; //!< send timestamp
    std::chrono::time_point<Clock> doneAt{};   //!< response received

    /** Client-observed round-trip latency in seconds. */
    double latencySeconds() const
    {
        return std::chrono::duration<double>(doneAt - submitAt).count();
    }
};

/** Client-side degradation knobs (defaults keep legacy behavior). */
struct NetClientOptions
{
    /**
     * Per-request deadline for compute submits: an outstanding
     * request older than this resolves with wire::Status::TimedOut.
     * Control round trips (register/ping/stats) are exempt — a
     * registration legitimately blocks on a long compile.  0
     * disables (no monitor thread is started).
     */
    std::chrono::milliseconds requestTimeout{0};

    /**
     * Reconnect attempts after an unexpected disconnect before the
     * client gives up and fails outstanding work with Disconnected.
     * The budget is cumulative across the connection's lifetime, and
     * every successful reconnect replays the outstanding frames.
     * 0 disables reconnecting entirely.
     */
    unsigned maxReconnects = 0;

    /** First backoff step (doubles per attempt, jittered 0.5-1.5x). */
    std::chrono::milliseconds backoffBase{2};

    /** Ceiling on one backoff sleep. */
    std::chrono::milliseconds backoffCap{250};

    /** Seed for the backoff jitter streams (determinism in tests). */
    std::uint64_t backoffSeed = 0x0b0ff5eedULL;
};

/** Client-side degradation counters (point-in-time snapshot). */
struct NetClientStats
{
    std::uint64_t timeouts = 0;   //!< requests resolved TimedOut
    std::uint64_t reconnects = 0; //!< successful redials
    std::uint64_t replays = 0;    //!< frames resent after a redial
};

/**
 * One jittered-exponential-backoff delay: `base << attempt`, capped
 * at `cap`, scaled by a uniform 0.5-1.5 draw from `rng` so a
 * thundering herd of retriers decorrelates.  Never less than 1ms.
 * Shared by NetClient, the load generator's --retry_busy loop, and
 * the chaos experiment.
 */
std::chrono::milliseconds jitteredBackoff(unsigned attempt,
                                          std::chrono::milliseconds base,
                                          std::chrono::milliseconds cap,
                                          Rng &rng);

/** A blocking-connect client for one NetServer. */
class NetClient
{
  public:
    /** Connect to host:port; fatal on connection failure. */
    NetClient(const std::string &host, std::uint16_t port,
              NetClientOptions options = {});

    /** Close the connection and join the reader. */
    ~NetClient();

    /** Non-copyable: owns the socket and reader thread. */
    NetClient(const NetClient &) = delete;
    /** Non-assignable (same reason). */
    NetClient &operator=(const NetClient &) = delete;

    /** True while the connection is up. */
    bool connected() const;

    /**
     * Register a design and wait for the server's answer.  On Ok,
     * `*id` receives the server-assigned design id and `*shard` (when
     * non-null) the owning shard.
     */
    wire::Status registerDesign(const IntMatrix &weights,
                                const core::CompileOptions &compile,
                                std::uint32_t *id,
                                std::uint32_t *shard = nullptr);

    /**
     * Send one compute request; the future resolves when the response
     * frame arrives (any status, including Busy sheds), when the
     * per-request timeout expires, or when the connection is lost for
     * good — never never.
     */
    std::future<RemoteResult> submit(std::uint32_t design,
                                     Request request);

    /**
     * Blocking submit that retries Busy and TimedOut responses with
     * jittered exponential backoff, up to `maxAttempts` submissions
     * total.  Returns the final result (which may still be Busy or
     * TimedOut when the budget runs out, or any terminal status).
     */
    RemoteResult submitRetry(std::uint32_t design,
                             const Request &request,
                             unsigned maxAttempts = 8);

    /** Round-trip an empty Ping frame. */
    wire::Status ping();

    /**
     * Fetch the server's per-shard counters: one row per shard,
     * columns per wire::ShardStatsCol.
     */
    wire::Status fetchStats(IntMatrix *out);

    /** Client-side degradation counters. */
    NetClientStats stats() const;

    /**
     * Half-close: stop sending (and reconnecting) and fail
     * outstanding requests once the server's remaining responses have
     * been read.  Idempotent.
     */
    void close();

  private:
    struct Pending
    {
        std::promise<RemoteResult> promise;
        std::chrono::time_point<Clock> submitAt{};
        /** Timeout deadline; epoch (= 0) when exempt. */
        std::chrono::time_point<Clock> deadline{};
        /** Encoded frame for replay; null when reconnect is off. */
        std::shared_ptr<const std::vector<std::uint8_t>> frame;
    };

    /** Enqueue a pending entry and send its frame. */
    std::future<RemoteResult> enqueueAndSend(wire::RequestFrame frame,
                                             bool applyTimeout)
        SPATIAL_EXCLUDES(pendingMutex_, sendMutex_);

    /** Send raw frame bytes; false once disconnected. */
    bool sendBytes(const std::vector<std::uint8_t> &bytes)
        SPATIAL_EXCLUDES(sendMutex_);

    /** Reader thread: decode/resolve, reconnect-and-replay on drop. */
    void readerLoop() SPATIAL_EXCLUDES(pendingMutex_);

    /** One connection's read-decode-resolve loop; returns on error. */
    void runReader() SPATIAL_EXCLUDES(pendingMutex_);

    /** Resend every outstanding frame in submit (id) order. */
    void replayPending() SPATIAL_EXCLUDES(pendingMutex_, sendMutex_);

    /** Timeout monitor thread: expire overdue pendings. */
    void timeoutLoop() SPATIAL_EXCLUDES(pendingMutex_);

    /** Fail every outstanding request with Disconnected. */
    void failAll() SPATIAL_EXCLUDES(pendingMutex_);

    /** Submit and wait for a one-shot control request. */
    RemoteResult roundTrip(wire::RequestFrame frame);

    const std::string host_;   //!< redial target
    const std::uint16_t port_; //!< redial target
    NetClientOptions options_;

    /**
     * The socket.  Replaced only by the reader thread during a
     * reconnect, under sendMutex_, so a sender never writes into a
     * half-swapped descriptor; reads happen on the reader thread
     * between swaps.
     */
    std::atomic<int> fd_{-1};
    std::atomic<bool> connected_{false};
    std::atomic<bool> closing_{false}; //!< close() called; stop redialing
    Mutex sendMutex_;    //!< serializes whole-frame socket writes
    Mutex pendingMutex_;
    std::unordered_map<std::uint64_t, Pending> pending_
        SPATIAL_GUARDED_BY(pendingMutex_);
    /** False once the reader has failed everything and exited; a
     * failed send after that must self-resolve its pending. */
    bool readerActive_ SPATIAL_GUARDED_BY(pendingMutex_) = true;
    bool timeoutStop_ SPATIAL_GUARDED_BY(pendingMutex_) = false;
    CondVar timeoutCv_; //!< wakes the monitor for shutdown
    std::atomic<std::uint64_t> nextId_{1};
    std::atomic<std::uint64_t> timeouts_{0};
    std::atomic<std::uint64_t> reconnects_{0};
    std::atomic<std::uint64_t> replays_{0};
    std::thread reader_;
    std::thread timeout_; //!< started only when requestTimeout > 0
};

/**
 * Parse a "host:port" endpoint string (the --remote CLI syntax);
 * fatal on malformed input.
 */
void parseEndpoint(const std::string &endpoint, std::string *host,
                   std::uint16_t *port);

} // namespace spatial::serve

#endif // SPATIAL_SERVE_NET_CLIENT_H
