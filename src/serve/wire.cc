#include "serve/wire.h"

#include <algorithm>
#include <cstring>

namespace spatial::serve::wire
{

namespace
{

/** Little-endian append helpers (byte-explicit, host-order free). */
void
putU8(std::vector<std::uint8_t> &out, std::uint8_t v)
{
    out.push_back(v);
}

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putI64(std::vector<std::uint8_t> &out, std::int64_t v)
{
    putU64(out, static_cast<std::uint64_t>(v));
}

void
putI64Span(std::vector<std::uint8_t> &out, const std::int64_t *v,
           std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        putI64(out, v[i]);
}

void
putMatrix(std::vector<std::uint8_t> &out, const IntMatrix &m)
{
    putU32(out, static_cast<std::uint32_t>(m.rows()));
    putU32(out, static_cast<std::uint32_t>(m.cols()));
    putI64Span(out, m.data().data(), m.size());
}

/**
 * Bounds-checked little-endian reader.  Every accessor checks the
 * remaining byte count first and latches a failure flag instead of
 * reading; callers test ok() once at the end (or wherever a count is
 * about to size an allocation).  This is the single funnel all decode
 * paths go through, which is what makes "never over-reads" a local
 * property instead of a per-message proof.
 */
class Cursor
{
  public:
    Cursor(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    bool ok() const { return ok_; }
    std::size_t remaining() const { return size_ - pos_; }

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        if (!need(2))
            return 0;
        std::uint16_t v = static_cast<std::uint16_t>(
            data_[pos_] | (data_[pos_ + 1] << 8));
        pos_ += 2;
        return v;
    }

    std::uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    /** Read n i64 values into `out`; fails (and clears) on shortage. */
    bool
    i64Span(std::vector<std::int64_t> &out, std::size_t n)
    {
        if (!need(n * 8)) {
            out.clear();
            return false;
        }
        out.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            out[i] = i64();
        return ok_;
    }

    /** Read an r x c i64 matrix; fails on shortage. */
    bool
    matrix(IntMatrix &out, std::size_t r, std::size_t c)
    {
        if (r != 0 && c != 0 && !need(r * c * 8))
            return false;
        out = IntMatrix(r, c);
        for (std::size_t i = 0; i < r; ++i)
            for (std::size_t j = 0; j < c; ++j)
                out.at(i, j) = i64();
        return ok_;
    }

  private:
    bool
    need(std::size_t n)
    {
        if (!ok_ || size_ - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/** Dimension sanity shared by every count read off the wire. */
bool
dimOk(std::uint32_t v)
{
    return v <= kMaxDim;
}

void
putHeader(std::vector<std::uint8_t> &out, std::uint8_t kind_or_status,
          std::uint64_t request_id, std::uint32_t design_id)
{
    putU16(out, kMagic);
    putU8(out, kVersion);
    putU8(out, kind_or_status);
    putU64(out, request_id);
    putU32(out, design_id);
}

/** Patch the u32 length prefix reserved at `length_at`. */
void
patchLength(std::vector<std::uint8_t> &out, std::size_t length_at)
{
    const std::size_t payload = out.size() - (length_at + 4);
    for (int i = 0; i < 4; ++i)
        out[length_at + i] =
            static_cast<std::uint8_t>(payload >> (8 * i));
}

bool
knownKind(std::uint8_t k)
{
    return k >= static_cast<std::uint8_t>(MessageKind::RegisterDesign) &&
           k <= static_cast<std::uint8_t>(MessageKind::Stats);
}

bool
knownStatus(std::uint8_t s)
{
    return s <= static_cast<std::uint8_t>(Status::Internal);
}

} // namespace

const char *
messageKindName(MessageKind kind)
{
    switch (kind) {
      case MessageKind::RegisterDesign:
        return "register_design";
      case MessageKind::Gemv:
        return "gemv";
      case MessageKind::GemvBatch:
        return "gemv_batch";
      case MessageKind::EsnStep:
        return "esn_step";
      case MessageKind::EsnSequence:
        return "esn_sequence";
      case MessageKind::Ping:
        return "ping";
      case MessageKind::Stats:
        return "stats";
    }
    return "?";
}

const char *
statusName(Status status)
{
    switch (status) {
      case Status::Ok:
        return "ok";
      case Status::Busy:
        return "busy";
      case Status::BadFrame:
        return "bad_frame";
      case Status::BadVersion:
        return "bad_version";
      case Status::BadRequest:
        return "bad_request";
      case Status::UnknownDesign:
        return "unknown_design";
      case Status::ShuttingDown:
        return "shutting_down";
      case Status::Internal:
        return "internal";
      case Status::TimedOut:
        return "timed_out";
      case Status::Disconnected:
        return "disconnected";
    }
    return "?";
}

void
appendRequestFrame(std::vector<std::uint8_t> &out,
                   const RequestFrame &frame)
{
    const std::size_t length_at = out.size();
    putU32(out, 0); // patched below
    putHeader(out, static_cast<std::uint8_t>(frame.kind),
              frame.requestId, frame.designId);
    switch (frame.kind) {
      case MessageKind::RegisterDesign: {
        const core::CompileOptions &c = frame.compile;
        putU32(out, static_cast<std::uint32_t>(frame.weights.rows()));
        putU32(out, static_cast<std::uint32_t>(frame.weights.cols()));
        putU8(out, static_cast<std::uint8_t>(c.inputBits));
        putU8(out, c.inputsSigned ? 1 : 0);
        putU8(out, static_cast<std::uint8_t>(c.signMode));
        putU8(out, c.constantPropagation ? 1 : 0);
        putU8(out, c.balancedTree ? 1 : 0);
        putU8(out, c.alignOutputs ? 1 : 0);
        putU8(out, static_cast<std::uint8_t>(c.extraOutputBits));
        putU8(out, 0); // pad
        putU32(out, c.broadcastFanoutLimit);
        putU64(out, c.csdSeed);
        putI64Span(out, frame.weights.data().data(),
                   frame.weights.size());
        break;
      }
      case MessageKind::Gemv:
        putU32(out,
               static_cast<std::uint32_t>(frame.request.vec.size()));
        putI64Span(out, frame.request.vec.data(),
                   frame.request.vec.size());
        break;
      case MessageKind::GemvBatch:
        putMatrix(out, frame.request.batch);
        break;
      case MessageKind::EsnStep:
        putU32(out,
               static_cast<std::uint32_t>(frame.request.vec.size()));
        putU32(out,
               static_cast<std::uint32_t>(frame.request.inject.size()));
        putU8(out, static_cast<std::uint8_t>(frame.request.postShift));
        putU8(out, static_cast<std::uint8_t>(frame.request.stateBits));
        putU16(out, 0); // pad
        putI64Span(out, frame.request.vec.data(),
                   frame.request.vec.size());
        putI64Span(out, frame.request.inject.data(),
                   frame.request.inject.size());
        break;
      case MessageKind::EsnSequence:
        putU32(out,
               static_cast<std::uint32_t>(frame.request.vec.size()));
        putU8(out, static_cast<std::uint8_t>(frame.request.postShift));
        putU8(out, static_cast<std::uint8_t>(frame.request.stateBits));
        putU16(out, 0); // pad
        putMatrix(out, frame.request.injectSeq);
        putI64Span(out, frame.request.vec.data(),
                   frame.request.vec.size());
        break;
      case MessageKind::Ping:
      case MessageKind::Stats:
        break;
    }
    patchLength(out, length_at);
}

void
appendResponseFrame(std::vector<std::uint8_t> &out,
                    const ResponseFrame &frame)
{
    const std::size_t length_at = out.size();
    putU32(out, 0); // patched below
    putHeader(out, static_cast<std::uint8_t>(frame.status),
              frame.requestId, frame.designId);
    putU8(out, static_cast<std::uint8_t>(frame.kind));
    if (frame.status == Status::Ok)
        putMatrix(out, frame.output);
    patchLength(out, length_at);
}

FrameResult
peekFrame(const std::uint8_t *data, std::size_t size,
          std::size_t *payload_offset, std::size_t *payload_size,
          std::size_t *frame_size, std::uint32_t max_payload)
{
    if (size < 4)
        return FrameResult::NeedMore;
    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i)
        length |= static_cast<std::uint32_t>(data[i]) << (8 * i);
    if (length < kHeaderBytes ||
        length > std::min(max_payload, kMaxFrameBytes))
        return FrameResult::Malformed;
    if (size < 4 + static_cast<std::size_t>(length))
        return FrameResult::NeedMore;
    *payload_offset = 4;
    *payload_size = length;
    *frame_size = 4 + static_cast<std::size_t>(length);
    return FrameResult::Ok;
}

namespace
{

/** Decode the shared 16-byte header; returns Ok or the error. */
Status
decodeHeader(Cursor &in, std::uint8_t *kind_or_status,
             std::uint64_t *request_id, std::uint32_t *design_id)
{
    const std::uint16_t magic = in.u16();
    const std::uint8_t version = in.u8();
    *kind_or_status = in.u8();
    *request_id = in.u64();
    *design_id = in.u32();
    if (!in.ok() || magic != kMagic)
        return Status::BadFrame;
    if (version != kVersion)
        return Status::BadVersion;
    return Status::Ok;
}

} // namespace

Status
decodeRequest(const std::uint8_t *payload, std::size_t size,
              RequestFrame *frame)
{
    Cursor in(payload, size);
    std::uint8_t kind_byte = 0;
    const Status header = decodeHeader(in, &kind_byte,
                                       &frame->requestId,
                                       &frame->designId);
    if (header != Status::Ok)
        return header;
    if (!knownKind(kind_byte))
        return Status::BadFrame;
    frame->kind = static_cast<MessageKind>(kind_byte);
    Request &req = frame->request;

    switch (frame->kind) {
      case MessageKind::RegisterDesign: {
        const std::uint32_t rows = in.u32();
        const std::uint32_t cols = in.u32();
        core::CompileOptions &c = frame->compile;
        c.inputBits = in.u8();
        c.inputsSigned = in.u8() != 0;
        const std::uint8_t sign = in.u8();
        c.constantPropagation = in.u8() != 0;
        c.balancedTree = in.u8() != 0;
        c.alignOutputs = in.u8() != 0;
        c.extraOutputBits = in.u8();
        (void)in.u8(); // pad
        c.broadcastFanoutLimit = in.u32();
        c.csdSeed = in.u64();
        if (!in.ok() || !dimOk(rows) || !dimOk(cols) || rows == 0 ||
            cols == 0)
            return Status::BadFrame;
        // Compiler preconditions checkable without the weights: the
        // engine's input planes encode at most 32 input bits, and 60+
        // extra output bits can never fit the 62-bit capture.  The
        // weight-dependent preconditions (Unsigned negativity, the
        // exact output-width bound) are enforced by
        // core::MatrixCompiler::checkCompile before the registrar
        // compiles — nothing on this path may reach a SPATIAL_FATAL.
        if (sign > static_cast<std::uint8_t>(core::SignMode::Csd) ||
            c.inputBits < 1 || c.inputBits > 32 ||
            c.extraOutputBits > 59)
            return Status::BadRequest;
        c.signMode = static_cast<core::SignMode>(sign);
        if (!in.matrix(frame->weights, rows, cols))
            return Status::BadFrame;
        if (c.signMode == core::SignMode::Unsigned &&
            !frame->weights.isNonNegative())
            return Status::BadRequest;
        break;
      }
      case MessageKind::Gemv: {
        req.kind = RequestKind::Gemv;
        const std::uint32_t n = in.u32();
        if (!in.ok() || !dimOk(n))
            return Status::BadFrame;
        if (!in.i64Span(req.vec, n))
            return Status::BadFrame;
        break;
      }
      case MessageKind::GemvBatch: {
        req.kind = RequestKind::GemvBatch;
        const std::uint32_t rows = in.u32();
        const std::uint32_t cols = in.u32();
        if (!in.ok() || !dimOk(rows) || !dimOk(cols))
            return Status::BadFrame;
        if (!in.matrix(req.batch, rows, cols))
            return Status::BadFrame;
        break;
      }
      case MessageKind::EsnStep: {
        req.kind = RequestKind::EsnStep;
        const std::uint32_t n = in.u32();
        const std::uint32_t inj = in.u32();
        req.postShift = in.u8();
        req.stateBits = in.u8();
        (void)in.u16(); // pad
        if (!in.ok() || !dimOk(n) || !dimOk(inj))
            return Status::BadFrame;
        if (!in.i64Span(req.vec, n) || !in.i64Span(req.inject, inj))
            return Status::BadFrame;
        break;
      }
      case MessageKind::EsnSequence: {
        req.kind = RequestKind::EsnSequence;
        const std::uint32_t n = in.u32();
        req.postShift = in.u8();
        req.stateBits = in.u8();
        (void)in.u16(); // pad
        const std::uint32_t steps = in.u32();
        const std::uint32_t inj_cols = in.u32();
        if (!in.ok() || !dimOk(n) || steps > kMaxSteps ||
            !dimOk(inj_cols))
            return Status::BadFrame;
        if (!in.matrix(req.injectSeq, steps, inj_cols))
            return Status::BadFrame;
        if (!in.i64Span(req.vec, n))
            return Status::BadFrame;
        break;
      }
      case MessageKind::Ping:
      case MessageKind::Stats:
        break;
    }
    // Trailing garbage means the sender and decoder disagree about the
    // layout — treat it like any other malformed frame.
    if (!in.ok() || in.remaining() != 0)
        return Status::BadFrame;
    return Status::Ok;
}

Status
decodeResponse(const std::uint8_t *payload, std::size_t size,
               ResponseFrame *frame)
{
    Cursor in(payload, size);
    std::uint8_t status_byte = 0;
    const Status header = decodeHeader(in, &status_byte,
                                       &frame->requestId,
                                       &frame->designId);
    if (header != Status::Ok)
        return header;
    if (!knownStatus(status_byte))
        return Status::BadFrame;
    frame->status = static_cast<Status>(status_byte);
    const std::uint8_t kind_byte = in.u8();
    if (!in.ok() || !knownKind(kind_byte))
        return Status::BadFrame;
    frame->kind = static_cast<MessageKind>(kind_byte);
    frame->output = IntMatrix();
    if (frame->status == Status::Ok) {
        const std::uint32_t rows = in.u32();
        const std::uint32_t cols = in.u32();
        if (!in.ok() || !dimOk(rows) || !dimOk(cols))
            return Status::BadFrame;
        if (!in.matrix(frame->output, rows, cols))
            return Status::BadFrame;
    }
    if (!in.ok() || in.remaining() != 0)
        return Status::BadFrame;
    return Status::Ok;
}

Status
validateRequest(const Request &request, std::size_t rows,
                std::size_t cols)
{
    switch (request.kind) {
      case RequestKind::Gemv:
        if (request.vec.size() != rows)
            return Status::BadRequest;
        break;
      case RequestKind::GemvBatch:
        if (request.batch.rows() == 0 || request.batch.cols() != rows)
            return Status::BadRequest;
        break;
      case RequestKind::EsnStep:
        if (request.vec.size() != rows)
            return Status::BadRequest;
        if (!request.inject.empty() && request.inject.size() != cols)
            return Status::BadRequest;
        break;
      case RequestKind::EsnSequence:
        if (rows != cols)
            return Status::BadRequest;
        if (request.vec.size() != rows)
            return Status::BadRequest;
        if (request.injectSeq.rows() > 0 &&
            request.injectSeq.cols() != cols)
            return Status::BadRequest;
        break;
    }
    if ((request.kind == RequestKind::EsnStep ||
         request.kind == RequestKind::EsnSequence) &&
        (request.postShift < 0 || request.postShift > 62 ||
         request.stateBits < 1 || request.stateBits > 62))
        return Status::BadRequest;
    return Status::Ok;
}

} // namespace wire
