#include "serve/design_store.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "analysis/verifier.h"
#include "common/fault.h"
#include "common/logging.h"
#include "core/batch_engine.h"

namespace spatial::serve
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

DesignStore::DesignStore(std::size_t capacity)
    : DesignStore(StoreOptions{capacity, {}, {}})
{}

DesignStore::DesignStore(StoreOptions options)
    : options_(std::move(options))
{
    options_.capacity = std::max<std::size_t>(1, options_.capacity);
    if (!options_.spillDir.empty())
        cold_ = std::make_unique<store::ColdTier>(options_.spillDir);
}

void
DesignStore::evictLocked(std::vector<Demotion> *demote)
{
    // Evict least-recently-used first, but never an entry whose
    // materialization is still in flight: evicting it would let a
    // concurrent request start a duplicate compile, and would leave
    // the owner's error-cleanup erasing someone else's entry.  If
    // everything over budget is in flight, capacity is exceeded
    // transiently and the next get() retries.
    auto it = lru_.end();
    while (entries_.size() > options_.capacity && it != lru_.begin()) {
        --it;
        const auto entry = entries_.find(*it);
        if (entry->second.future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready)
            continue;
        if (cold_ != nullptr)
            demote->emplace_back(entry->first,
                                 entry->second.future.get());
        entries_.erase(entry);
        it = lru_.erase(it);
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
DesignStore::demote(std::vector<Demotion> demotions)
{
    // Serialization is file I/O over potentially tens of megabytes;
    // it must not run under the store mutex.  Overwriting a file the
    // key already has is harmless (same bytes, atomic rename).
    for (const auto &[key, design] : demotions)
        if (cold_->put(key, *design))
            demotions_.fetch_add(1, std::memory_order_relaxed);
}

void
DesignStore::setJitAdmission(const core::SimOptions &sim,
                             std::size_t max_batch_lanes)
{
    MutexLock lock(mutex_);
    jitAdmission_ = sim.jit;
    jitSim_ = sim;
    jitMaxBatchLanes_ = std::max<std::size_t>(1, max_batch_lanes);
}

void
DesignStore::admitJit(const core::TiledDesign &design)
{
    core::SimOptions sim;
    std::size_t max_batch_lanes = 0;
    {
        MutexLock lock(mutex_);
        if (!jitAdmission_)
            return;
        sim = jitSim_;
        max_batch_lanes = jitMaxBatchLanes_;
    }

    // The serving hot paths per tile: W = 1 (TiledGemv sequences,
    // small groups) and whatever W the engine resolves for a full
    // group.  Groups in between fall back to the interpreted tape,
    // which the engine's interpFallbackGroups counter makes visible.
    std::size_t attached = 0;
    std::size_t wanted = 0;
    for (std::size_t i = 0; i < design.tileCount(); ++i) {
        const core::CompiledMatrix &tile = design.tile(i);
        std::vector<unsigned> lane_words{1};
        const unsigned wide =
            core::resolvedLaneWords(tile, sim, max_batch_lanes);
        if (wide != 1)
            lane_words.push_back(wide);
        wanted += lane_words.size();
        for (const unsigned w : lane_words)
            if (tile.ensureJit(sim, w) != nullptr)
                ++attached;
    }
    if (attached == wanted)
        jitAdmitted_.fetch_add(1, std::memory_order_relaxed);
    else
        jitFailed_.fetch_add(1, std::memory_order_relaxed);
    jitCompileMicros_.fetch_add(
        static_cast<std::uint64_t>(design.jitCompileSeconds() * 1e6),
        std::memory_order_relaxed);
}

std::shared_ptr<const core::TiledDesign>
DesignStore::get(const IntMatrix &weights,
                 const core::CompileOptions &options)
{
    return get(experiments::makeDesignKey(weights, options), weights,
               options);
}

std::shared_ptr<const core::TiledDesign>
DesignStore::get(const experiments::DesignKey &key,
                 const IntMatrix &weights,
                 const core::CompileOptions &options)
{
    Future future;
    std::promise<std::shared_ptr<const core::TiledDesign>> promise;
    bool owner = false;
    std::vector<Demotion> pending_demotions;
    {
        MutexLock lock(mutex_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            lru_.splice(lru_.begin(), lru_, it->second.lruIt);
            future = it->second.future;
        } else {
            misses_.fetch_add(1, std::memory_order_relaxed);
            owner = true;
            future = promise.get_future().share();
            lru_.push_front(key);
            entries_.emplace(key, Entry{future, lru_.begin()});
            evictLocked(&pending_demotions);
        }
    }
    if (!pending_demotions.empty())
        demote(std::move(pending_demotions));
    if (owner) {
        try {
            std::shared_ptr<const core::TiledDesign> design;

            // Cold tier first: a demoted design rematerializes from
            // its spill file — netlist replay plus plan rebuild, not
            // a recompile.  Any validation failure falls back.
            if (cold_ != nullptr) {
                const auto start = std::chrono::steady_clock::now();
                const auto status = cold_->get(key, &design);
                if (status == store::LoadStatus::Ok) {
                    promotions_.fetch_add(1,
                                          std::memory_order_relaxed);
                    loadMicros_.fetch_add(
                        static_cast<std::uint64_t>(
                            secondsSince(start) * 1e6),
                        std::memory_order_relaxed);
                } else if (status != store::LoadStatus::NotFound) {
                    coldFallbacks_.fetch_add(
                        1, std::memory_order_relaxed);
                    SPATIAL_WARN(
                        "store: cold design ", cold_->pathFor(key),
                        " unusable (",
                        store::loadStatusName(status),
                        "); recompiling");
                }
#ifndef NDEBUG
                // Debug builds statically verify every rematerialized
                // design; a checksum-valid file whose artifacts break
                // an invariant falls back to a recompile exactly like
                // a Corrupt load status.
                if (design != nullptr) {
                    const analysis::Report report =
                        analysis::verifyDesign(*design);
                    if (!report.ok()) {
                        design = nullptr;
                        coldFallbacks_.fetch_add(
                            1, std::memory_order_relaxed);
                        SPATIAL_WARN(
                            "store: cold design ",
                            cold_->pathFor(key),
                            " failed verification (",
                            report.diagnostics.front().rule,
                            "); recompiling");
                    }
                }
#endif
            }
            if (design == nullptr) {
                // Injection sites: an admission latency spike, and a
                // transient compile failure.  Real compile errors
                // propagate to every waiter as an exception; an
                // injected failure models a transient toolchain
                // hiccup on a compilable design, which admission
                // rides out with a bounded backoff-retry loop — the
                // request is delayed, never failed, and never
                // escapes as an exception into the worker pool.
                if (const std::uint64_t spike_ms =
                        fault::injectFaultParam(
                            fault::Site::StoreCompileDelay)) {
                    faultsInjected_.fetch_add(
                        1, std::memory_order_relaxed);
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(spike_ms));
                }
                for (int attempt = 0;
                     attempt < 4 &&
                     fault::injectFault(
                         fault::Site::StoreCompileFail);
                     ++attempt) {
                    faultsInjected_.fetch_add(
                        1, std::memory_order_relaxed);
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1LL << attempt));
                }
                const auto start = std::chrono::steady_clock::now();
                design = std::make_shared<const core::TiledDesign>(
                    core::TiledDesign::compile(weights, options,
                                               options_.tile));
                compileMicros_.fetch_add(
                    static_cast<std::uint64_t>(secondsSince(start) *
                                               1e6),
                    std::memory_order_relaxed);
#ifndef NDEBUG
                // A freshly compiled design failing static
                // verification is a compiler bug, not bad input —
                // surface it at the source instead of as a downstream
                // miscompare.
                if (const analysis::Report report =
                        analysis::verifyDesign(*design);
                    !report.ok())
                    SPATIAL_PANIC(
                        "store: compiled design failed verification: ",
                        report.diagnostics.front().str());
#endif
            }
            // JIT admission happens before the future resolves, so
            // waiters blocked on this entry also cover the native
            // compile: one admission per design, storm or not.
            admitJit(*design);
            promise.set_value(std::move(design));
        } catch (...) {
            promise.set_exception(std::current_exception());
            MutexLock lock(mutex_);
            const auto it = entries_.find(key);
            if (it != entries_.end()) {
                lru_.erase(it->second.lruIt);
                entries_.erase(it);
            }
            throw;
        }
    }
    return future.get();
}

DesignStore::Stats
DesignStore::stats() const
{
    Stats stats;
    stats.cache.hits = hits_.load(std::memory_order_relaxed);
    stats.cache.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    stats.demotions = demotions_.load(std::memory_order_relaxed);
    stats.promotions = promotions_.load(std::memory_order_relaxed);
    stats.coldFallbacks =
        coldFallbacks_.load(std::memory_order_relaxed);
    stats.compileSeconds =
        static_cast<double>(
            compileMicros_.load(std::memory_order_relaxed)) /
        1e6;
    stats.loadSeconds =
        static_cast<double>(
            loadMicros_.load(std::memory_order_relaxed)) /
        1e6;
    stats.jitAdmitted = jitAdmitted_.load(std::memory_order_relaxed);
    stats.jitFailed = jitFailed_.load(std::memory_order_relaxed);
    stats.jitCompileSeconds =
        static_cast<double>(
            jitCompileMicros_.load(std::memory_order_relaxed)) /
        1e6;
    stats.faultsInjected =
        faultsInjected_.load(std::memory_order_relaxed);
    {
        MutexLock lock(mutex_);
        stats.resident = entries_.size();
    }
    return stats;
}

store::ColdTierStats
DesignStore::coldStats() const
{
    return cold_ != nullptr ? cold_->stats() : store::ColdTierStats{};
}

} // namespace spatial::serve
