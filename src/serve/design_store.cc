#include "serve/design_store.h"

#include <algorithm>
#include <chrono>

#include "core/batch_engine.h"
#include "core/compiler.h"

namespace spatial::serve
{

DesignStore::DesignStore(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity))
{}

void
DesignStore::evictLocked()
{
    // Evict least-recently-used first, but never an entry whose
    // compilation is still in flight: evicting it would let a
    // concurrent request start a duplicate compile, and would leave
    // the owner's error-cleanup erasing someone else's entry.  If
    // everything over budget is in flight, capacity is exceeded
    // transiently and the next get() retries.
    auto it = lru_.end();
    while (entries_.size() > capacity_ && it != lru_.begin()) {
        --it;
        const auto entry = entries_.find(*it);
        if (entry->second.future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready)
            continue;
        entries_.erase(entry);
        it = lru_.erase(it);
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
DesignStore::setJitAdmission(const core::SimOptions &sim,
                             std::size_t max_batch_lanes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    jitAdmission_ = sim.jit;
    jitSim_ = sim;
    jitMaxBatchLanes_ = std::max<std::size_t>(1, max_batch_lanes);
}

void
DesignStore::admitJit(const core::CompiledMatrix &design)
{
    core::SimOptions sim;
    std::size_t max_batch_lanes = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!jitAdmission_)
            return;
        sim = jitSim_;
        max_batch_lanes = jitMaxBatchLanes_;
    }

    // The serving hot paths: W = 1 (TapeGemv sequences, small groups)
    // and whatever W the engine resolves for a full group.  Groups in
    // between fall back to the interpreted tape, which the engine's
    // interpFallbackGroups counter makes visible.
    std::vector<unsigned> lane_words{1};
    const unsigned wide =
        core::resolvedLaneWords(design, sim, max_batch_lanes);
    if (wide != 1)
        lane_words.push_back(wide);

    std::size_t attached = 0;
    for (const unsigned w : lane_words)
        if (design.ensureJit(sim, w) != nullptr)
            ++attached;
    if (attached == lane_words.size())
        jitAdmitted_.fetch_add(1, std::memory_order_relaxed);
    else
        jitFailed_.fetch_add(1, std::memory_order_relaxed);
    jitCompileMicros_.fetch_add(
        static_cast<std::uint64_t>(design.jitCompileSeconds() * 1e6),
        std::memory_order_relaxed);
}

std::shared_ptr<const core::CompiledMatrix>
DesignStore::get(const IntMatrix &weights,
                 const core::CompileOptions &options)
{
    return get(experiments::makeDesignKey(weights, options), weights,
               options);
}

std::shared_ptr<const core::CompiledMatrix>
DesignStore::get(const experiments::DesignKey &key,
                 const IntMatrix &weights,
                 const core::CompileOptions &options)
{
    Future future;
    std::promise<std::shared_ptr<const core::CompiledMatrix>> promise;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            lru_.splice(lru_.begin(), lru_, it->second.lruIt);
            future = it->second.future;
        } else {
            misses_.fetch_add(1, std::memory_order_relaxed);
            owner = true;
            future = promise.get_future().share();
            lru_.push_front(key);
            entries_.emplace(key, Entry{future, lru_.begin()});
            evictLocked();
        }
    }
    if (owner) {
        try {
            auto design = std::make_shared<const core::CompiledMatrix>(
                core::MatrixCompiler(options).compile(weights));
            // JIT admission happens before the future resolves, so
            // waiters blocked on this entry also cover the native
            // compile: one admission per design, storm or not.
            admitJit(*design);
            promise.set_value(std::move(design));
        } catch (...) {
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mutex_);
            const auto it = entries_.find(key);
            if (it != entries_.end()) {
                lru_.erase(it->second.lruIt);
                entries_.erase(it);
            }
            throw;
        }
    }
    return future.get();
}

DesignStore::Stats
DesignStore::stats() const
{
    Stats stats;
    stats.cache.hits = hits_.load(std::memory_order_relaxed);
    stats.cache.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    stats.jitAdmitted = jitAdmitted_.load(std::memory_order_relaxed);
    stats.jitFailed = jitFailed_.load(std::memory_order_relaxed);
    stats.jitCompileSeconds =
        static_cast<double>(
            jitCompileMicros_.load(std::memory_order_relaxed)) /
        1e6;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats.resident = entries_.size();
    }
    return stats;
}

} // namespace spatial::serve
