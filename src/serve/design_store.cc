#include "serve/design_store.h"

#include <algorithm>
#include <chrono>

#include "core/compiler.h"

namespace spatial::serve
{

DesignStore::DesignStore(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity))
{}

void
DesignStore::evictLocked()
{
    // Evict least-recently-used first, but never an entry whose
    // compilation is still in flight: evicting it would let a
    // concurrent request start a duplicate compile, and would leave
    // the owner's error-cleanup erasing someone else's entry.  If
    // everything over budget is in flight, capacity is exceeded
    // transiently and the next get() retries.
    auto it = lru_.end();
    while (entries_.size() > capacity_ && it != lru_.begin()) {
        --it;
        const auto entry = entries_.find(*it);
        if (entry->second.future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready)
            continue;
        entries_.erase(entry);
        it = lru_.erase(it);
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

std::shared_ptr<const core::CompiledMatrix>
DesignStore::get(const IntMatrix &weights,
                 const core::CompileOptions &options)
{
    return get(experiments::makeDesignKey(weights, options), weights,
               options);
}

std::shared_ptr<const core::CompiledMatrix>
DesignStore::get(const experiments::DesignKey &key,
                 const IntMatrix &weights,
                 const core::CompileOptions &options)
{
    Future future;
    std::promise<std::shared_ptr<const core::CompiledMatrix>> promise;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            lru_.splice(lru_.begin(), lru_, it->second.lruIt);
            future = it->second.future;
        } else {
            misses_.fetch_add(1, std::memory_order_relaxed);
            owner = true;
            future = promise.get_future().share();
            lru_.push_front(key);
            entries_.emplace(key, Entry{future, lru_.begin()});
            evictLocked();
        }
    }
    if (owner) {
        try {
            promise.set_value(
                std::make_shared<const core::CompiledMatrix>(
                    core::MatrixCompiler(options).compile(weights)));
        } catch (...) {
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mutex_);
            const auto it = entries_.find(key);
            if (it != entries_.end()) {
                lru_.erase(it->second.lruIt);
                entries_.erase(it);
            }
            throw;
        }
    }
    return future.get();
}

DesignStore::Stats
DesignStore::stats() const
{
    Stats stats;
    stats.cache.hits = hits_.load(std::memory_order_relaxed);
    stats.cache.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats.resident = entries_.size();
    }
    return stats;
}

} // namespace spatial::serve
