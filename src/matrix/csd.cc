#include "matrix/csd.h"

#include "matrix/bits.h"

namespace spatial
{

CsdDigits
toCsdDigits(std::int64_t value, int bitwidth, Rng &rng)
{
    SPATIAL_ASSERT(value >= 0, "CSD input must be non-negative, got ", value);
    SPATIAL_ASSERT(bitwidth >= 1 && bitwidth <= 61, "bitwidth ", bitwidth);
    SPATIAL_ASSERT(value <= maxUnsigned(bitwidth), "value ", value,
                   " exceeds ", bitwidth, " bits");

    // Listing 1, with the bit list kept LSb-first throughout.
    CsdDigits target(static_cast<std::size_t>(bitwidth) + 1, 0);
    int chain_start = -1;
    for (int i = 0; i < bitwidth + 1; ++i) {
        const bool bit = i < bitwidth && bitAt(value, i);
        if (!bit) {
            if (chain_start == -1)
                continue; // No chain to terminate.
            const int chain_length = i - chain_start;
            if (chain_length == 1) {
                // Lone 1: leave it alone.
                target[chain_start] = 1;
            } else if (chain_length == 2) {
                // Cost-neutral either way; flip a coin to balance the
                // decomposition.
                if (rng.coin()) {
                    target[chain_start] = -1;
                    target[i] = 1;
                } else {
                    target[chain_start] = 1;
                    target[i - 1] = 1;
                }
            } else {
                // 0111..1 -> +1000..0 -1: strict win for length >= 3.
                target[chain_start] = -1;
                target[i] = 1;
            }
            chain_start = -1;
        } else if (chain_start == -1) {
            chain_start = i;
        }
    }
    SPATIAL_ASSERT(chain_start == -1, "unterminated chain for ", value);
    return target;
}

std::int64_t
csdValue(const CsdDigits &digits)
{
    std::int64_t v = 0;
    for (std::size_t k = 0; k < digits.size(); ++k)
        v += static_cast<std::int64_t>(digits[k]) * (std::int64_t{1} << k);
    return v;
}

int
csdOnes(const CsdDigits &digits)
{
    int ones = 0;
    for (const auto d : digits)
        ones += (d != 0);
    return ones;
}

namespace
{

/**
 * Add one element's CSD decomposition into the output pair; `same` is the
 * side the element came from, `other` the opposite side.
 */
void
accumulateCsd(std::int64_t value, int bitwidth, Rng &rng,
              std::int64_t &same, std::int64_t &other)
{
    if (value == 0)
        return;
    const CsdDigits digits = toCsdDigits(value, bitwidth, rng);
    for (std::size_t k = 0; k < digits.size(); ++k) {
        if (digits[k] > 0)
            same += std::int64_t{1} << k;
        else if (digits[k] < 0)
            other += std::int64_t{1} << k;
    }
}

} // namespace

PnPair
csdTransform(const PnPair &pn, Rng &rng)
{
    SPATIAL_ASSERT(pn.p.isNonNegative() && pn.n.isNonNegative(),
                   "PN pair must be unsigned");
    const std::size_t rows = pn.p.rows();
    const std::size_t cols = pn.p.cols();
    const int bitwidth = pn.bitwidth();

    PnPair out{IntMatrix(rows, cols), IntMatrix(rows, cols)};
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            accumulateCsd(pn.p.at(r, c), bitwidth, rng, out.p.at(r, c),
                          out.n.at(r, c));
            accumulateCsd(pn.n.at(r, c), bitwidth, rng, out.n.at(r, c),
                          out.p.at(r, c));
        }
    }
    return out;
}

PnPair
csdSplit(const IntMatrix &v, Rng &rng)
{
    return csdTransform(pnSplit(v), rng);
}

} // namespace spatial
