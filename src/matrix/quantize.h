/**
 * @file
 * Float-to-integer quantization for reservoir weights and activations.
 *
 * Kleyko et al. (paper citation [16]) show reservoirs tolerate 3-4 bit
 * weights with no accuracy loss; the ESN hardware path quantizes its
 * float reservoir symmetrically into the integer range the compiler
 * consumes.
 */

#ifndef SPATIAL_MATRIX_QUANTIZE_H
#define SPATIAL_MATRIX_QUANTIZE_H

#include <cstdint>
#include <vector>

#include "matrix/dense.h"

namespace spatial
{

/** Result of symmetric quantization: q = round(x * scale). */
struct QuantizedMatrix
{
    IntMatrix values;
    double scale = 1.0; //!< multiply floats by this to get integers
};

struct QuantizedVector
{
    std::vector<std::int64_t> values;
    double scale = 1.0;
};

/**
 * Symmetric (zero-preserving) quantization of a matrix into `bits`-bit
 * signed integers.  Zero elements stay exactly zero, so element sparsity
 * is preserved.
 */
QuantizedMatrix quantizeSymmetric(const RealMatrix &m, int bits);

/** Symmetric quantization of a vector into `bits`-bit signed integers. */
QuantizedVector quantizeSymmetric(const std::vector<double> &v, int bits);

/**
 * Quantize with a caller-provided scale (for streaming vectors that must
 * share one scale across time steps); values saturate at the signed range.
 */
std::vector<std::int64_t> quantizeWithScale(const std::vector<double> &v,
                                            double scale, int bits);

/** Dequantize integers back to floats (divide by scale). */
std::vector<double> dequantize(const std::vector<std::int64_t> &v,
                               double scale);

} // namespace spatial

#endif // SPATIAL_MATRIX_QUANTIZE_H
