#include "matrix/pn_split.h"

#include <algorithm>

#include "matrix/bits.h"

namespace spatial
{

int
PnPair::bitwidth() const
{
    const std::int64_t biggest = std::max(p.maxAbs(), n.maxAbs());
    return std::max(1, bitWidth(biggest));
}

IntMatrix
PnPair::reconstruct() const
{
    SPATIAL_ASSERT(p.rows() == n.rows() && p.cols() == n.cols(),
                   "PN shape mismatch");
    IntMatrix v(p.rows(), p.cols());
    for (std::size_t r = 0; r < p.rows(); ++r)
        for (std::size_t c = 0; c < p.cols(); ++c)
            v.at(r, c) = p.at(r, c) - n.at(r, c);
    return v;
}

PnPair
pnSplit(const IntMatrix &v)
{
    PnPair out{IntMatrix(v.rows(), v.cols()), IntMatrix(v.rows(), v.cols())};
    for (std::size_t r = 0; r < v.rows(); ++r) {
        for (std::size_t c = 0; c < v.cols(); ++c) {
            const std::int64_t x = v.at(r, c);
            if (x >= 0)
                out.p.at(r, c) = x;
            else
                out.n.at(r, c) = -x;
        }
    }
    return out;
}

} // namespace spatial
