/**
 * @file
 * Dense integer and real matrices.
 *
 * IntMatrix is the canonical weight container for the spatial compiler:
 * row-major, 64-bit signed storage, with helpers to measure the quantities
 * the paper's cost model depends on (nonzeros and set magnitude bits).
 * RealMatrix backs the floating-point ESN reference path.
 */

#ifndef SPATIAL_MATRIX_DENSE_H
#define SPATIAL_MATRIX_DENSE_H

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace spatial
{

/** Row-major dense matrix of 64-bit signed integers. */
class IntMatrix
{
  public:
    IntMatrix() = default;

    /** Create a rows x cols matrix of zeros. */
    IntMatrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    std::int64_t &
    at(std::size_t r, std::size_t c)
    {
        SPATIAL_ASSERT(r < rows_ && c < cols_,
                       "index (", r, ",", c, ") out of ", rows_, "x", cols_);
        return data_[r * cols_ + c];
    }

    std::int64_t
    at(std::size_t r, std::size_t c) const
    {
        SPATIAL_ASSERT(r < rows_ && c < cols_,
                       "index (", r, ",", c, ") out of ", rows_, "x", cols_);
        return data_[r * cols_ + c];
    }

    std::int64_t &operator()(std::size_t r, std::size_t c) { return at(r, c); }
    std::int64_t operator()(std::size_t r, std::size_t c) const
    {
        return at(r, c);
    }

    const std::vector<std::int64_t> &data() const { return data_; }

    /** Count of nonzero elements. */
    std::size_t nonZeroCount() const;

    /** Fraction of elements that are zero, in [0, 1]. */
    double elementSparsity() const;

    /**
     * Total set bits across all element magnitudes — the paper's hardware
     * cost driver ("the cost should be proportional to the number of bits
     * set").  Signed elements contribute popcount(|v|).
     */
    std::size_t onesCount() const;

    /** Fraction of zero bits out of rows*cols*bitwidth total bit slots. */
    double bitSparsity(int bitwidth) const;

    /** Largest |element|. */
    std::int64_t maxAbs() const;

    /** True when every element is >= 0. */
    bool isNonNegative() const;

    /** Elementwise equality. */
    bool operator==(const IntMatrix &other) const = default;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::int64_t> data_;
};

/** Row-major dense matrix of doubles (ESN reference path). */
class RealMatrix
{
  public:
    RealMatrix() = default;

    RealMatrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double &
    at(std::size_t r, std::size_t c)
    {
        SPATIAL_ASSERT(r < rows_ && c < cols_,
                       "index (", r, ",", c, ") out of ", rows_, "x", cols_);
        return data_[r * cols_ + c];
    }

    double
    at(std::size_t r, std::size_t c) const
    {
        SPATIAL_ASSERT(r < rows_ && c < cols_,
                       "index (", r, ",", c, ") out of ", rows_, "x", cols_);
        return data_[r * cols_ + c];
    }

    double &operator()(std::size_t r, std::size_t c) { return at(r, c); }
    double operator()(std::size_t r, std::size_t c) const { return at(r, c); }

    const std::vector<double> &data() const { return data_; }
    std::vector<double> &mutableData() { return data_; }

    /** Largest |element|. */
    double maxAbs() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Reference vector-matrix product o = a^T V (the paper's Equation 3).
 *
 * @param a length-rows input vector.
 * @param v rows x cols weight matrix.
 * @return length-cols output vector, accumulated in 64 bits.
 */
std::vector<std::int64_t> gemvRef(const std::vector<std::int64_t> &a,
                                  const IntMatrix &v);

/** Real-valued o = a^T V. */
std::vector<double> gemvRef(const std::vector<double> &a,
                            const RealMatrix &v);

} // namespace spatial

#endif // SPATIAL_MATRIX_DENSE_H
