/**
 * @file
 * Bit-level utilities shared by the matrix transforms and the compiler.
 */

#ifndef SPATIAL_MATRIX_BITS_H
#define SPATIAL_MATRIX_BITS_H

#include <bit>
#include <cstdint>

#include "common/logging.h"

namespace spatial
{

/** Number of set bits in a non-negative value. */
inline int
popcount64(std::int64_t v)
{
    SPATIAL_ASSERT(v >= 0, "popcount64 expects non-negative, got ", v);
    return std::popcount(static_cast<std::uint64_t>(v));
}

/** Minimum number of bits needed to represent a non-negative value. */
inline int
bitWidth(std::int64_t v)
{
    SPATIAL_ASSERT(v >= 0, "bitWidth expects non-negative, got ", v);
    return static_cast<int>(std::bit_width(static_cast<std::uint64_t>(v)));
}

/** Bit k (LSb = 0) of a non-negative value. */
inline bool
bitAt(std::int64_t v, int k)
{
    SPATIAL_ASSERT(v >= 0 && k >= 0 && k < 63, "bitAt(", v, ", ", k, ")");
    return ((static_cast<std::uint64_t>(v) >> k) & 1u) != 0;
}

/** Largest value representable in `bits` unsigned bits. */
inline std::int64_t
maxUnsigned(int bits)
{
    SPATIAL_ASSERT(bits >= 0 && bits <= 62, "maxUnsigned(", bits, ")");
    return (std::int64_t{1} << bits) - 1;
}

/** Inclusive signed range [minSigned(bits), maxSigned(bits)]. */
inline std::int64_t
maxSigned(int bits)
{
    SPATIAL_ASSERT(bits >= 1 && bits <= 62, "maxSigned(", bits, ")");
    return (std::int64_t{1} << (bits - 1)) - 1;
}

inline std::int64_t
minSigned(int bits)
{
    SPATIAL_ASSERT(bits >= 1 && bits <= 62, "minSigned(", bits, ")");
    return -(std::int64_t{1} << (bits - 1));
}

} // namespace spatial

#endif // SPATIAL_MATRIX_BITS_H
