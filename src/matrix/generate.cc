#include "matrix/generate.h"

#include <algorithm>

#include "matrix/bits.h"

namespace spatial
{

IntMatrix
makeBitSparseMatrix(std::size_t rows, std::size_t cols, int bitwidth,
                    double bit_sparsity, Rng &rng)
{
    SPATIAL_ASSERT(bitwidth >= 1 && bitwidth <= 62, "bitwidth ", bitwidth);
    const double p_set = 1.0 - bit_sparsity;
    IntMatrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            std::int64_t v = 0;
            for (int k = 0; k < bitwidth; ++k)
                if (rng.bernoulli(p_set))
                    v |= std::int64_t{1} << k;
            m.at(r, c) = v;
        }
    }
    return m;
}

namespace
{

/**
 * Zero random nonzero positions "until we reach a desired level of
 * element-sparsity" (Section IV): the final matrix has exactly
 * round(sparsity * size) zero elements, counting any that were already
 * zero in the uniform draw.
 */
void
zeroToSparsity(IntMatrix &m, double element_sparsity, Rng &rng)
{
    const std::size_t total = m.rows() * m.cols();
    const auto target = static_cast<std::size_t>(
        static_cast<double>(total) * element_sparsity + 0.5);
    const std::size_t existing = total - m.nonZeroCount();
    if (existing >= target)
        return;

    std::vector<std::size_t> nonzero;
    nonzero.reserve(m.nonZeroCount());
    for (std::size_t i = 0; i < total; ++i)
        if (m.at(i / m.cols(), i % m.cols()) != 0)
            nonzero.push_back(i);

    // Partial Fisher-Yates over the nonzero positions.
    const std::size_t need = target - existing;
    for (std::size_t i = 0; i < need && i < nonzero.size(); ++i) {
        const auto j = static_cast<std::size_t>(rng.uniformInt(
            static_cast<std::int64_t>(i),
            static_cast<std::int64_t>(nonzero.size() - 1)));
        std::swap(nonzero[i], nonzero[j]);
        m.at(nonzero[i] / m.cols(), nonzero[i] % m.cols()) = 0;
    }
}

} // namespace

IntMatrix
makeElementSparseMatrix(std::size_t rows, std::size_t cols, int bitwidth,
                        double element_sparsity, Rng &rng)
{
    SPATIAL_ASSERT(bitwidth >= 1 && bitwidth <= 62, "bitwidth ", bitwidth);
    IntMatrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m.at(r, c) = rng.uniformInt(0, maxUnsigned(bitwidth));
    zeroToSparsity(m, element_sparsity, rng);
    return m;
}

IntMatrix
makeSignedElementSparseMatrix(std::size_t rows, std::size_t cols,
                              int bitwidth, double element_sparsity,
                              Rng &rng)
{
    SPATIAL_ASSERT(bitwidth >= 2 && bitwidth <= 62, "bitwidth ", bitwidth);
    IntMatrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m.at(r, c) = rng.uniformInt(minSigned(bitwidth),
                                        maxSigned(bitwidth));
    zeroToSparsity(m, element_sparsity, rng);
    return m;
}

std::vector<std::int64_t>
makeUnsignedVector(std::size_t n, int bitwidth, Rng &rng)
{
    std::vector<std::int64_t> v(n);
    for (auto &x : v)
        x = rng.uniformInt(0, maxUnsigned(bitwidth));
    return v;
}

std::vector<std::int64_t>
makeSignedVector(std::size_t n, int bitwidth, Rng &rng)
{
    std::vector<std::int64_t> v(n);
    for (auto &x : v)
        x = rng.uniformInt(minSigned(bitwidth), maxSigned(bitwidth));
    return v;
}

IntMatrix
makeSignedBatch(std::size_t batch, std::size_t n, int bitwidth, Rng &rng)
{
    IntMatrix m(batch, n);
    for (std::size_t b = 0; b < batch; ++b)
        for (std::size_t i = 0; i < n; ++i)
            m.at(b, i) = rng.uniformInt(minSigned(bitwidth),
                                        maxSigned(bitwidth));
    return m;
}

} // namespace spatial
