/**
 * @file
 * Positive/negative matrix split for signed weights.
 *
 * Section III: "An easy way to implement signed weights is to separate the
 * positive and negative terms of the b vector into two separate unsigned
 * vectors, and simply subtract the two resultant streams."  V = P - N with
 * P, N >= 0; the compiler builds one array per side and a final row of
 * bit-serial subtractors.
 */

#ifndef SPATIAL_MATRIX_PN_SPLIT_H
#define SPATIAL_MATRIX_PN_SPLIT_H

#include "matrix/dense.h"

namespace spatial
{

/** A signed matrix decomposed as V = P - N with both sides unsigned. */
struct PnPair
{
    IntMatrix p;
    IntMatrix n;

    /** Total set bits across both sides — the hardware cost driver. */
    std::size_t onesCount() const
    {
        return p.onesCount() + n.onesCount();
    }

    /** Minimum unsigned bitwidth that holds every element of P and N. */
    int bitwidth() const;

    /** Reconstruct the signed matrix (P - N). */
    IntMatrix reconstruct() const;
};

/**
 * Split a signed matrix into its positive and negative parts.  Each
 * element lands wholly in one side, so the total ones count is conserved
 * ("the number of ones in the two matrices is conserved by this
 * transform").
 */
PnPair pnSplit(const IntMatrix &v);

} // namespace spatial

#endif // SPATIAL_MATRIX_PN_SPLIT_H
