/**
 * @file
 * Random matrix and vector generators matching the paper's experiments.
 *
 * Section IV defines two sampling schemes: *bit-sparse* matrices, where
 * every bit of every element is an independent Bernoulli draw, and
 * *element-sparse* matrices, where elements are uniform over all values of
 * the bitwidth and then a fraction of elements is zeroed.  Section VI uses
 * signed 8-bit element-sparse matrices for the large-scale designs, and the
 * ESN library uses the same scheme for reservoir weights.
 */

#ifndef SPATIAL_MATRIX_GENERATE_H
#define SPATIAL_MATRIX_GENERATE_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "matrix/dense.h"

namespace spatial
{

/**
 * Unsigned matrix where each of the rows*cols*bitwidth bit slots is set
 * with probability (1 - bit_sparsity).  Used for Figure 5.
 */
IntMatrix makeBitSparseMatrix(std::size_t rows, std::size_t cols,
                              int bitwidth, double bit_sparsity, Rng &rng);

/**
 * Unsigned matrix whose elements are uniform over [0, 2^bitwidth - 1],
 * after which exactly round(element_sparsity * rows * cols) positions are
 * zeroed (without replacement).  Used for Figures 6 and 9.
 */
IntMatrix makeElementSparseMatrix(std::size_t rows, std::size_t cols,
                                  int bitwidth, double element_sparsity,
                                  Rng &rng);

/**
 * Signed matrix whose elements are uniform over the two's-complement range
 * of the bitwidth, zeroed to the requested element sparsity.  The Section
 * VI large-scale scheme (8-bit signed weights).
 */
IntMatrix makeSignedElementSparseMatrix(std::size_t rows, std::size_t cols,
                                        int bitwidth,
                                        double element_sparsity, Rng &rng);

/** Uniform random vector over the unsigned range of the bitwidth. */
std::vector<std::int64_t> makeUnsignedVector(std::size_t n, int bitwidth,
                                             Rng &rng);

/** Uniform random vector over the signed range of the bitwidth. */
std::vector<std::int64_t> makeSignedVector(std::size_t n, int bitwidth,
                                           Rng &rng);

/**
 * Dense batch (batch x n) of uniform signed vectors, used by the batching
 * experiments (Figures 17, 18, 23).
 */
IntMatrix makeSignedBatch(std::size_t batch, std::size_t n, int bitwidth,
                          Rng &rng);

} // namespace spatial

#endif // SPATIAL_MATRIX_GENERATE_H
