#include "matrix/quantize.h"

#include <algorithm>
#include <cmath>

#include "matrix/bits.h"

namespace spatial
{

namespace
{

std::int64_t
clampRound(double x, int bits)
{
    const double lo = static_cast<double>(minSigned(bits));
    const double hi = static_cast<double>(maxSigned(bits));
    return static_cast<std::int64_t>(std::llround(std::clamp(x, lo, hi)));
}

} // namespace

QuantizedMatrix
quantizeSymmetric(const RealMatrix &m, int bits)
{
    SPATIAL_ASSERT(bits >= 2 && bits <= 32, "bits ", bits);
    const double max_abs = m.maxAbs();
    const double scale =
        max_abs > 0.0 ? static_cast<double>(maxSigned(bits)) / max_abs : 1.0;

    QuantizedMatrix out;
    out.scale = scale;
    out.values = IntMatrix(m.rows(), m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            out.values.at(r, c) = clampRound(m.at(r, c) * scale, bits);
    return out;
}

QuantizedVector
quantizeSymmetric(const std::vector<double> &v, int bits)
{
    SPATIAL_ASSERT(bits >= 2 && bits <= 32, "bits ", bits);
    double max_abs = 0.0;
    for (const auto x : v)
        max_abs = std::max(max_abs, std::abs(x));
    const double scale =
        max_abs > 0.0 ? static_cast<double>(maxSigned(bits)) / max_abs : 1.0;

    QuantizedVector out;
    out.scale = scale;
    out.values = quantizeWithScale(v, scale, bits);
    return out;
}

std::vector<std::int64_t>
quantizeWithScale(const std::vector<double> &v, double scale, int bits)
{
    SPATIAL_ASSERT(bits >= 2 && bits <= 32, "bits ", bits);
    std::vector<std::int64_t> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = clampRound(v[i] * scale, bits);
    return out;
}

std::vector<double>
dequantize(const std::vector<std::int64_t> &v, double scale)
{
    SPATIAL_ASSERT(scale != 0.0, "zero scale");
    std::vector<double> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = static_cast<double>(v[i]) / scale;
    return out;
}

} // namespace spatial
