#include "matrix/dense.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "matrix/bits.h"

namespace spatial
{

std::size_t
IntMatrix::nonZeroCount() const
{
    std::size_t count = 0;
    for (const auto v : data_)
        count += (v != 0);
    return count;
}

double
IntMatrix::elementSparsity() const
{
    if (data_.empty())
        return 0.0;
    return 1.0 -
           static_cast<double>(nonZeroCount()) /
               static_cast<double>(data_.size());
}

std::size_t
IntMatrix::onesCount() const
{
    std::size_t ones = 0;
    for (const auto v : data_)
        ones += static_cast<std::size_t>(popcount64(std::abs(v)));
    return ones;
}

double
IntMatrix::bitSparsity(int bitwidth) const
{
    SPATIAL_ASSERT(bitwidth > 0, "bitwidth ", bitwidth);
    if (data_.empty())
        return 1.0;
    const double slots =
        static_cast<double>(data_.size()) * static_cast<double>(bitwidth);
    return 1.0 - static_cast<double>(onesCount()) / slots;
}

std::int64_t
IntMatrix::maxAbs() const
{
    std::int64_t best = 0;
    for (const auto v : data_)
        best = std::max(best, std::abs(v));
    return best;
}

bool
IntMatrix::isNonNegative() const
{
    return std::all_of(data_.begin(), data_.end(),
                       [](std::int64_t v) { return v >= 0; });
}

double
RealMatrix::maxAbs() const
{
    double best = 0.0;
    for (const auto v : data_)
        best = std::max(best, std::abs(v));
    return best;
}

std::vector<std::int64_t>
gemvRef(const std::vector<std::int64_t> &a, const IntMatrix &v)
{
    SPATIAL_ASSERT(a.size() == v.rows(), "gemv: |a|=", a.size(), " rows=",
                   v.rows());
    std::vector<std::int64_t> out(v.cols(), 0);
    for (std::size_t r = 0; r < v.rows(); ++r) {
        const std::int64_t ar = a[r];
        if (ar == 0)
            continue;
        for (std::size_t c = 0; c < v.cols(); ++c)
            out[c] += ar * v.at(r, c);
    }
    return out;
}

std::vector<double>
gemvRef(const std::vector<double> &a, const RealMatrix &v)
{
    SPATIAL_ASSERT(a.size() == v.rows(), "gemv: |a|=", a.size(), " rows=",
                   v.rows());
    std::vector<double> out(v.cols(), 0.0);
    for (std::size_t r = 0; r < v.rows(); ++r) {
        const double ar = a[r];
        if (ar == 0.0)
            continue;
        for (std::size_t c = 0; c < v.cols(); ++c)
            out[c] += ar * v.at(r, c);
    }
    return out;
}

} // namespace spatial
