/**
 * @file
 * Canonical Signed Digit (CSD) transform — Section V / Listing 1.
 *
 * CSD rewrites an unsigned integer as a difference of two sparser unsigned
 * integers by replacing runs ("chains") of consecutive 1 bits: a chain of
 * length >= 3 becomes +2^(end) - 2^(start); a chain of length 2 is replaced
 * with probability 1/2 (the paper's coin flip, which balances the
 * decomposition because the substitution is cost-neutral there); a chain of
 * length 1 is left alone.  The digit vector is one bit wider than the
 * input and never has more set digits than the binary form.
 *
 * The implementation follows the paper's Listing 1 exactly, including its
 * non-merging of a chain substitution with an immediately following chain
 * (so the output is not strictly canonical CSD — it is the paper's
 * algorithm, reproduced faithfully).
 */

#ifndef SPATIAL_MATRIX_CSD_H
#define SPATIAL_MATRIX_CSD_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "matrix/dense.h"
#include "matrix/pn_split.h"

namespace spatial
{

/**
 * Signed digit vector, LSb first; each digit is -1, 0, or +1.
 * value = sum_k digits[k] * 2^k.
 */
using CsdDigits = std::vector<std::int8_t>;

/**
 * Convert a non-negative value to signed digits per Listing 1.
 *
 * @param value non-negative input.
 * @param bitwidth number of binary input bits to scan; the result has
 *        bitwidth + 1 digit positions.
 * @param rng source for the length-2 chain coin flip.
 */
CsdDigits toCsdDigits(std::int64_t value, int bitwidth, Rng &rng);

/** Reconstruct the integer value of a digit vector. */
std::int64_t csdValue(const CsdDigits &digits);

/** Count of nonzero digits (the hardware cost of the representation). */
int csdOnes(const CsdDigits &digits);

/**
 * Apply CSD to a PN pair: each element of P and N is decomposed, positive
 * digits stay in the element's own side and negative digits move to the
 * opposite side ("positive elements that result from CSD remain in the
 * original matrix, and negative elements are transferred to the opposite
 * weight matrix").  The result still satisfies P' - N' == P - N, generally
 * with fewer total ones, at one extra bit of width.
 */
PnPair csdTransform(const PnPair &pn, Rng &rng);

/** Convenience: pnSplit followed by csdTransform. */
PnPair csdSplit(const IntMatrix &v, Rng &rng);

} // namespace spatial

#endif // SPATIAL_MATRIX_CSD_H
