#include "matrix/io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace spatial
{

void
writeMatrix(const IntMatrix &m, std::ostream &os)
{
    os << "spatial-matrix v1 " << m.rows() << " " << m.cols() << "\n";
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
            if (c)
                os << " ";
            os << m.at(r, c);
        }
        os << "\n";
    }
}

IntMatrix
readMatrix(std::istream &is)
{
    std::string magic, version;
    std::size_t rows = 0, cols = 0;
    is >> magic >> version >> rows >> cols;
    if (!is || magic != "spatial-matrix" || version != "v1")
        SPATIAL_FATAL("not a spatial-matrix v1 stream");
    if (rows == 0 || cols == 0)
        SPATIAL_FATAL("degenerate matrix shape ", rows, "x", cols);

    IntMatrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            std::int64_t v;
            if (!(is >> v))
                SPATIAL_FATAL("truncated matrix at (", r, ",", c, ")");
            m.at(r, c) = v;
        }
    }
    return m;
}

void
saveMatrix(const IntMatrix &m, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        SPATIAL_FATAL("cannot open '", path, "' for writing");
    writeMatrix(m, os);
    if (!os)
        SPATIAL_FATAL("write to '", path, "' failed");
}

IntMatrix
loadMatrix(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        SPATIAL_FATAL("cannot open '", path, "' for reading");
    return readMatrix(is);
}

} // namespace spatial
