/**
 * @file
 * Compressed Sparse Row storage.
 *
 * The CSR form is what the GPU baselines index over (cuSPARSE-style) and
 * what the software ESN backend multiplies with; the spatial compiler by
 * contrast consumes the dense form and *eliminates* the indexing entirely.
 */

#ifndef SPATIAL_MATRIX_CSR_H
#define SPATIAL_MATRIX_CSR_H

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "matrix/dense.h"

namespace spatial
{

/** CSR sparse matrix over an arbitrary value type. */
template <typename T>
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /** Build from dense; zero elements are dropped. */
    template <typename Dense>
    static CsrMatrix
    fromDense(const Dense &m)
    {
        CsrMatrix out;
        out.rows_ = m.rows();
        out.cols_ = m.cols();
        out.rowPtr_.clear();
        out.rowPtr_.reserve(m.rows() + 1);
        out.rowPtr_.push_back(0);
        for (std::size_t r = 0; r < m.rows(); ++r) {
            for (std::size_t c = 0; c < m.cols(); ++c) {
                const auto v = m.at(r, c);
                if (v != T{}) {
                    out.colIdx_.push_back(c);
                    out.values_.push_back(static_cast<T>(v));
                }
            }
            out.rowPtr_.push_back(out.values_.size());
        }
        return out;
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t nnz() const { return values_.size(); }

    const std::vector<std::size_t> &rowPtr() const { return rowPtr_; }
    const std::vector<std::size_t> &colIdx() const { return colIdx_; }
    const std::vector<T> &values() const { return values_; }

    /** o = a^T V; a has length rows(), result has length cols(). */
    std::vector<T>
    multiplyLeft(const std::vector<T> &a) const
    {
        SPATIAL_ASSERT(a.size() == rows_, "csr gemv: |a|=", a.size(),
                       " rows=", rows_);
        std::vector<T> out(cols_, T{});
        for (std::size_t r = 0; r < rows_; ++r) {
            const T ar = a[r];
            if (ar == T{})
                continue;
            for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k)
                out[colIdx_[k]] += ar * values_[k];
        }
        return out;
    }

    /** Reconstruct the dense form (for tests). */
    IntMatrix
    toDenseInt() const
        requires std::is_integral_v<T>
    {
        IntMatrix m(rows_, cols_);
        for (std::size_t r = 0; r < rows_; ++r)
            for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k)
                m.at(r, colIdx_[k]) = values_[k];
        return m;
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::size_t> rowPtr_{0};
    std::vector<std::size_t> colIdx_;
    std::vector<T> values_;
};

} // namespace spatial

#endif // SPATIAL_MATRIX_CSR_H
