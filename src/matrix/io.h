/**
 * @file
 * Plain-text matrix serialization, so fixed reservoir matrices — the
 * whole premise is that W never changes — can be stored, shared, and
 * reloaded bit-exactly alongside the RTL generated from them.
 *
 * Format: a header line "spatial-matrix v1 <rows> <cols>" followed by
 * one whitespace-separated row per line.
 */

#ifndef SPATIAL_MATRIX_IO_H
#define SPATIAL_MATRIX_IO_H

#include <iosfwd>
#include <string>

#include "matrix/dense.h"

namespace spatial
{

/** Write a matrix to a stream. */
void writeMatrix(const IntMatrix &m, std::ostream &os);

/** Parse a matrix from a stream; SPATIAL_FATAL on malformed input. */
IntMatrix readMatrix(std::istream &is);

/** Write to a file path. */
void saveMatrix(const IntMatrix &m, const std::string &path);

/** Read from a file path. */
IntMatrix loadMatrix(const std::string &path);

} // namespace spatial

#endif // SPATIAL_MATRIX_IO_H
