/**
 * @file
 * The artifact produced by the spatial compiler: a netlist implementing
 * o = a^T V for one fixed matrix, plus the stream bookkeeping needed to
 * drive it and capture results.
 */

#ifndef SPATIAL_CORE_COMPILED_MATRIX_H
#define SPATIAL_CORE_COMPILED_MATRIX_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "circuit/netlist.h"
#include "circuit/simulator.h"
#include "core/options.h"
#include "matrix/dense.h"

namespace spatial::circuit
{
class ExecPlan;
} // namespace spatial::circuit

namespace spatial::circuit::jit
{
class JitModule;
} // namespace spatial::circuit::jit

namespace spatial::store
{
class DesignSerializer;
} // namespace spatial::store

namespace spatial::core
{

/** Where one output column's result stream emerges. */
struct ColumnOutput
{
    /** Producing component, or kNoNode for an all-zero column. */
    circuit::NodeId node = circuit::kNoNode;

    /**
     * Cycle at which result bit 0 appears (bit t appears at
     * lsbLatency + t).  May be negative for columns whose bookkeeping
     * doubled an undelayed stream; bits before cycle 0 are zero.
     */
    std::int32_t lsbLatency = 0;
};

/**
 * A fixed matrix compiled to a spatial bit-serial design.
 *
 * multiply() streams a vector through a cycle-accurate simulation of the
 * generated netlist and returns the exact integer product, which tests
 * compare against the reference gemv.
 */
class CompiledMatrix
{
  public:
    const circuit::Netlist &netlist() const { return netlist_; }
    const std::vector<ColumnOutput> &outputs() const { return outputs_; }
    const CompileOptions &options() const { return options_; }

    /**
     * The netlist's compiled execution plan, built once at compile time
     * and shared (immutably) by every simulator instance and worker
     * thread that executes this design.
     */
    const circuit::ExecPlan &plan() const;

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Unsigned bitwidth of the compiled (post-transform) weights. */
    int weightBits() const { return weightBits_; }

    /** Total set bits across the compiled P/N pair (the cost driver). */
    std::size_t weightOnes() const { return weightOnes_; }

    /** Bits captured per output column (no-overflow width). */
    int outputBits() const { return outputBits_; }

    /** Cycles from reset until every output has fully drained. */
    std::uint32_t drainCycles() const { return drainCycles_; }

    /**
     * The paper's Equation 5 cycle count for this design
     * (BW_i + BW_w + ceil(log2 R) + 2), used by the evaluation figures.
     */
    std::uint32_t paperLatencyCycles() const;

    /**
     * Steady-state cycles between successive vectors when streaming a
     * batch (one output-width stream per wire per vector).
     */
    std::uint32_t initiationInterval() const;

    /**
     * Compute o = a^T V by cycle-accurate simulation.
     *
     * @param a input vector of length rows(); each element must fit the
     *        configured input bitwidth.
     */
    std::vector<std::int64_t> multiply(const std::vector<std::int64_t> &a)
        const;

    /** As multiply(), reusing the caller's simulator (reset first). */
    std::vector<std::int64_t>
    multiplyWith(circuit::Simulator &sim,
                 const std::vector<std::int64_t> &a) const;

    /** Multiply every row of `batch` (batch.cols() == rows()). */
    IntMatrix multiplyBatch(const IntMatrix &batch) const;

    /**
     * As multiplyBatch(), but on the compiled-tape engine: up to
     * 64 * SimOptions::laneWords vectors per netlist pass on
     * BlockSimulator, with independent lane groups sharded across
     * worker threads.  Bit-exact with the scalar path (proved by the
     * equivalence suite) and the fast path for every batch workload.
     */
    IntMatrix multiplyBatchWide(const IntMatrix &batch,
                                const SimOptions &sim_options = {}) const;

    /**
     * The seed implementation of the wide batch path: one 64-lane
     * WideSimulator group at a time, gathering input bits from the
     * batch every cycle.  Retained as the reference baseline for the
     * equivalence tests and the bench/sim_throughput speedup
     * measurement; use multiplyBatchWide() everywhere else.
     */
    IntMatrix multiplyBatchWideLegacy(const IntMatrix &batch) const;

    /**
     * Compile and attach a circuit::jit module matching `options`'
     * execution mode at `lane_words` (W), or return the already
     * attached match.  This is the admission step SimOptions::jit
     * relies on: the engine itself never compiles, it only uses
     * modules attached here.  Returns null — leaving the design on
     * the interpreted tape — when no toolchain is available or the
     * out-of-process compile fails.  Thread-safe and idempotent;
     * `const` because designs are shared immutably (the attachment is
     * an execution cache, not a semantic change).
     */
    std::shared_ptr<const circuit::jit::JitModule>
    ensureJit(const SimOptions &options, unsigned lane_words) const;

    /**
     * The attached module whose tables match (W, gated,
     * ops-per-segment), or null.  The engine resolves through this per
     * worker; a null is the interpreter fallback, never an error.
     */
    std::shared_ptr<const circuit::jit::JitModule>
    jitFor(unsigned lane_words, bool gated,
           std::size_t ops_per_segment) const;

    /** Attached JIT modules (0 = cold design / fallback). */
    std::size_t jitModuleCount() const;

    /** Total out-of-process compile seconds across attached modules. */
    double jitCompileSeconds() const;

  private:
    friend class MatrixCompiler;
    /** The store's load path rebuilds designs field-by-field. */
    friend class spatial::store::DesignSerializer;

    /** JIT modules attached to this design, shared across copies. */
    struct JitAttachment
    {
        mutable std::mutex mutex;
        std::vector<std::shared_ptr<const circuit::jit::JitModule>>
            modules;
    };

    circuit::Netlist netlist_;
    std::shared_ptr<const circuit::ExecPlan> plan_;
    std::vector<ColumnOutput> outputs_;
    CompileOptions options_;
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    int weightBits_ = 0;
    int outputBits_ = 0;
    std::size_t weightOnes_ = 0;
    std::uint32_t drainCycles_ = 0;
    std::shared_ptr<JitAttachment> jit_ =
        std::make_shared<JitAttachment>();
};

/**
 * Measure the design's register switching activity by streaming the
 * given vectors (up to 64, one per simulator lane) through the
 * netlist: toggles per register bit per cycle per lane.  Feed the
 * result into fpga::PowerCoefficients::activity to replace the default
 * Vivado-style assumption with data-dependent switching.  The engine
 * knobs of `options` (kernel, activity gating) select the execution
 * path; every path counts toggles identically.
 */
double measureSwitchingActivity(const CompiledMatrix &design,
                                const IntMatrix &batch,
                                const SimOptions &options = {});

} // namespace spatial::core

#endif // SPATIAL_CORE_COMPILED_MATRIX_H
