/**
 * @file
 * Batched execution of compiled designs on the tape engine.
 *
 * This is the machinery behind CompiledMatrix::multiplyBatchWide and the
 * batched ESN backend: it runs a design's cached ExecPlan on
 * BlockSimulator<W> over groups of 64*W input vectors, sharding
 * independent groups across worker threads.
 *
 * Per group, the input vectors are bit-transposed once into port-major
 * lane-word planes (one plane per input bit position plus one
 * sign-extension plane), so the drain loop feeds each cycle with a
 * single pointer bump instead of re-gathering batch elements per row per
 * cycle.  Output streams are captured as raw lane-words (a W-word copy
 * per column per capture cycle) and decoded back to integers once per
 * group.  All scratch planes live in a per-worker context that is reused
 * across that worker's groups.
 */

#ifndef SPATIAL_CORE_BATCH_ENGINE_H
#define SPATIAL_CORE_BATCH_ENGINE_H

#include <cstdint>
#include <vector>

#include "circuit/block_simulator.h"
#include "core/options.h"
#include "matrix/dense.h"

namespace spatial::core
{

class CompiledMatrix;

/**
 * Engine-side accounting of one batched run: how many tape segments
 * the activity-gated simulators executed versus skipped as quiescent
 * (both zero when gating is disabled).
 */
struct BatchStats
{
    /** Segments executed across all groups and workers. */
    std::uint64_t segmentsExecuted = 0;

    /** Segments skipped as provably quiescent. */
    std::uint64_t segmentsSkipped = 0;

    /**
     * Lane groups executed through a design-attached JIT module
     * (always 0 unless SimOptions::jit requested one).
     */
    std::uint64_t jitGroups = 0;

    /**
     * Lane groups that requested JIT execution but fell back to the
     * interpreted tape (cold design, no matching module, or no
     * toolchain); groups run without SimOptions::jit do not count.
     */
    std::uint64_t interpFallbackGroups = 0;

    /** Accumulate another run's counters. */
    void
    add(const BatchStats &other)
    {
        segmentsExecuted += other.segmentsExecuted;
        segmentsSkipped += other.segmentsSkipped;
        jitGroups += other.jitGroups;
        interpFallbackGroups += other.interpFallbackGroups;
    }
};

/**
 * Multiply every row of `batch` through the design's compiled tape.
 * Bit-exact with CompiledMatrix::multiplyBatch (proved by the
 * equivalence suite); groups run across `options.threads` workers.
 * When `stats` is non-null, the run's segment accounting is added to
 * it.
 */
IntMatrix runBatchWide(const CompiledMatrix &design, const IntMatrix &batch,
                       const SimOptions &options = {},
                       BatchStats *stats = nullptr);

/**
 * The lane-word count W that runBatchWide uses for this design and a
 * batch of `batch_rows` vectors under `options` (resolves
 * laneWords == 0 auto sizing against the resolved kernel's vector
 * width), so callers can account netlist passes exactly.
 */
unsigned resolvedLaneWords(const CompiledMatrix &design,
                           const SimOptions &options,
                           std::size_t batch_rows);

/**
 * The SIMD kernel runBatchWide executes under `options`: the injected
 * SimOptions::kernel, or the process-wide runtime-detected one.
 * Callers use it to report the dispatched kernel by name.
 */
const circuit::kernels::Kernel &resolvedKernel(const SimOptions &options);

/**
 * The worker-thread count runBatchWide actually spawns for this
 * design/batch pair under `options`: SimOptions::threads with the 0 =
 * "one per hardware context" sentinel resolved and the result clamped
 * to the number of 64*W-lane groups, so benches and serving stats can
 * report the real parallelism instead of the raw option value.
 */
unsigned resolvedThreads(const CompiledMatrix &design,
                         const SimOptions &options,
                         std::size_t batch_rows);

/**
 * Persistent single-vector executor on the tape engine.
 *
 * The recurrent ESN update is sequential (each state feeds the next), so
 * it cannot use batch lanes — but it issues thousands of single-vector
 * multiplies against one design.  TapeGemv keeps one BlockSimulator and
 * all scratch planes alive across calls, replacing the per-call
 * interpreter dispatch and allocation of the scalar path.
 */
class TapeGemv
{
  public:
    /**
     * Bind to a design; the design must outlive this object.  The
     * gating knobs of `options` apply per multiply (threads and
     * laneWords are meaningless for a single-vector executor and are
     * ignored).
     */
    explicit TapeGemv(const CompiledMatrix &design,
                      const SimOptions &options = {});

    /** o = x^T V; bit-exact with CompiledMatrix::multiply(). */
    std::vector<std::int64_t> multiply(const std::vector<std::int64_t> &x);

    /** As multiply(), writing into a caller-owned output vector. */
    void multiplyInto(const std::vector<std::int64_t> &x,
                      std::vector<std::int64_t> &out);

    /** Cumulative segment accounting across this object's multiplies. */
    const BatchStats &engineStats() const { return stats_; }

  private:
    const CompiledMatrix &design_;
    circuit::BlockSimulator<1, false> sim_;
    bool jitRequested_;                 //!< options.jit (accounting)
    std::vector<std::uint64_t> planes_; //!< (inputBits+1) x rows words
    std::vector<std::uint64_t> raw_;    //!< per-column captured bits
    BatchStats stats_;                  //!< cumulative segment counters
};

} // namespace spatial::core

#endif // SPATIAL_CORE_BATCH_ENGINE_H
