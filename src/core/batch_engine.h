/**
 * @file
 * Batched execution of compiled designs on the tape engine.
 *
 * This is the machinery behind CompiledMatrix::multiplyBatchWide and the
 * batched ESN backend: it runs a design's cached ExecPlan on
 * BlockSimulator<W> over groups of 64*W input vectors, sharding
 * independent groups across worker threads.
 *
 * Per group, the input vectors are bit-transposed once into port-major
 * lane-word planes (one plane per input bit position plus one
 * sign-extension plane), so the drain loop feeds each cycle with a
 * single pointer bump instead of re-gathering batch elements per row per
 * cycle.  Output streams are captured as raw lane-words (a W-word copy
 * per column per capture cycle) and decoded back to integers once per
 * group.  All scratch planes live in a per-worker context that is reused
 * across that worker's groups.
 */

#ifndef SPATIAL_CORE_BATCH_ENGINE_H
#define SPATIAL_CORE_BATCH_ENGINE_H

#include <cstdint>
#include <vector>

#include "circuit/block_simulator.h"
#include "core/options.h"
#include "matrix/dense.h"

namespace spatial::core
{

class CompiledMatrix;

/**
 * Multiply every row of `batch` through the design's compiled tape.
 * Bit-exact with CompiledMatrix::multiplyBatch (proved by the
 * equivalence suite); groups run across `options.threads` workers.
 */
IntMatrix runBatchWide(const CompiledMatrix &design, const IntMatrix &batch,
                       const SimOptions &options = {});

/**
 * The lane-word count W that runBatchWide uses for this design and a
 * batch of `batch_rows` vectors under `options` (resolves
 * laneWords == 0 auto sizing against the resolved kernel's vector
 * width), so callers can account netlist passes exactly.
 */
unsigned resolvedLaneWords(const CompiledMatrix &design,
                           const SimOptions &options,
                           std::size_t batch_rows);

/**
 * The SIMD kernel runBatchWide executes under `options`: the injected
 * SimOptions::kernel, or the process-wide runtime-detected one.
 * Callers use it to report the dispatched kernel by name.
 */
const circuit::kernels::Kernel &resolvedKernel(const SimOptions &options);

/**
 * Persistent single-vector executor on the tape engine.
 *
 * The recurrent ESN update is sequential (each state feeds the next), so
 * it cannot use batch lanes — but it issues thousands of single-vector
 * multiplies against one design.  TapeGemv keeps one BlockSimulator and
 * all scratch planes alive across calls, replacing the per-call
 * interpreter dispatch and allocation of the scalar path.
 */
class TapeGemv
{
  public:
    /** Bind to a design; the design must outlive this object. */
    explicit TapeGemv(const CompiledMatrix &design);

    /** o = x^T V; bit-exact with CompiledMatrix::multiply(). */
    std::vector<std::int64_t> multiply(const std::vector<std::int64_t> &x);

    /** As multiply(), writing into a caller-owned output vector. */
    void multiplyInto(const std::vector<std::int64_t> &x,
                      std::vector<std::int64_t> &out);

  private:
    const CompiledMatrix &design_;
    circuit::BlockSimulator<1, false> sim_;
    std::vector<std::uint64_t> planes_; //!< (inputBits+1) x rows words
    std::vector<std::uint64_t> raw_;    //!< per-column captured bits
};

} // namespace spatial::core

#endif // SPATIAL_CORE_BATCH_ENGINE_H
