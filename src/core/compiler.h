/**
 * @file
 * The spatial matrix compiler — the paper's primary contribution.
 *
 * Compiles a fixed integer matrix into a bit-serial netlist (Section III):
 * one reduction tree per column per weight-bit-plane over the rows whose
 * bit is set (constant propagation culls everything else), a bit-position
 * accumulation chain whose registers double as the x2 skew, and a final
 * bit-serial subtractor per column merging the positive and negative
 * weight arrays.
 */

#ifndef SPATIAL_CORE_COMPILER_H
#define SPATIAL_CORE_COMPILER_H

#include "core/compiled_matrix.h"
#include "core/options.h"
#include "matrix/dense.h"
#include "matrix/pn_split.h"

namespace spatial::core
{

/** Compiles fixed matrices into spatial bit-serial designs. */
class MatrixCompiler
{
  public:
    explicit MatrixCompiler(CompileOptions options = {});

    /**
     * Compile a (possibly signed) matrix, applying the configured sign
     * mode.  Unsigned mode requires a non-negative matrix.
     */
    CompiledMatrix compile(const IntMatrix &weights) const;

    /**
     * Compile an explicit P/N pair (both unsigned).  Used directly by
     * experiments that pre-transform the weights (Figures 9, 10).
     */
    CompiledMatrix compilePair(const PnPair &pn) const;

    /**
     * Non-fatal precheck of `MatrixCompiler(options).compile(weights)`:
     * returns nullptr when the compile would succeed, or a static
     * description of the violated precondition (inputBits range,
     * extraOutputBits range, Unsigned-mode negativity, empty matrix,
     * or the 62-bit output-width capture bound).  The checks mirror
     * the SPATIAL_FATALs on the compile path exactly — including the
     * sign-mode-specific weight bitwidth — so network-facing callers
     * can reject a bad registration with an error status where the
     * constructor or compile() would terminate the process.  Safe on
     * any input, including INT64_MIN weights that the split
     * transforms themselves cannot negate.
     */
    static const char *checkCompile(const CompileOptions &options,
                                    const IntMatrix &weights);

    const CompileOptions &options() const { return options_; }

  private:
    CompileOptions options_;
};

} // namespace spatial::core

#endif // SPATIAL_CORE_COMPILER_H
