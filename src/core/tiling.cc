#include "core/tiling.h"

#include "common/logging.h"
#include "matrix/bits.h"

namespace spatial::core
{

TilePlan
planColumnTiles(const PnPair &pn, std::size_t lut_budget)
{
    SPATIAL_ASSERT(lut_budget > 0, "zero LUT budget");
    const std::size_t rows = pn.p.rows();
    const std::size_t cols = pn.p.cols();

    // Per-column cost: set bits across both sides (LUT ~ ones).
    std::vector<std::size_t> col_cost(cols, 0);
    for (std::size_t c = 0; c < cols; ++c) {
        std::size_t ones = 0;
        for (std::size_t r = 0; r < rows; ++r) {
            ones += static_cast<std::size_t>(popcount64(pn.p.at(r, c)));
            ones += static_cast<std::size_t>(popcount64(pn.n.at(r, c)));
        }
        col_cost[c] = ones;
    }

    TilePlan plan;
    plan.lutBudget = lut_budget;
    Tile current;
    for (std::size_t c = 0; c < cols; ++c) {
        const bool fits =
            current.estimatedLuts + col_cost[c] <= lut_budget;
        const bool empty = current.colEnd == current.colBegin;
        if (!fits && !empty) {
            plan.tiles.push_back(current);
            current = Tile{c, c, 0};
        }
        current.colEnd = c + 1;
        current.estimatedLuts += col_cost[c];
    }
    if (current.colEnd != current.colBegin)
        plan.tiles.push_back(current);
    return plan;
}

IntMatrix
sliceColumns(const IntMatrix &m, std::size_t begin, std::size_t end)
{
    SPATIAL_ASSERT(begin < end && end <= m.cols(), "bad slice [", begin,
                   ", ", end, ") of ", m.cols());
    IntMatrix out(m.rows(), end - begin);
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = begin; c < end; ++c)
            out.at(r, c - begin) = m.at(r, c);
    return out;
}

double
tiledLatencyNs(const TilePlan &plan, double per_tile_ns, double reconfig_ns)
{
    SPATIAL_ASSERT(!plan.tiles.empty(), "empty plan");
    const auto passes = static_cast<double>(plan.passes());
    return passes * per_tile_ns + (passes - 1.0) * reconfig_ns;
}

} // namespace spatial::core
