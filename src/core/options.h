/**
 * @file
 * Configuration of the spatial matrix compiler.
 */

#ifndef SPATIAL_CORE_OPTIONS_H
#define SPATIAL_CORE_OPTIONS_H

#include <cstdint>

namespace spatial::circuit::kernels
{
struct Kernel;
}

/**
 * @namespace spatial::core
 * The spatial matrix compiler and its batch simulation engine.
 */
namespace spatial::core
{

/** How signed weights are decomposed before spatial implementation. */
enum class SignMode : std::uint8_t
{
    /** Weights used as-is; requires a non-negative matrix.  (Section IV) */
    Unsigned,
    /** V = P - N positive/negative split plus final subtractors. */
    PnSplit,
    /** PN split followed by the CSD transform (Section V). */
    Csd,
};

const char *signModeName(SignMode mode);

/** Compiler knobs; defaults match the paper's main configuration. */
struct CompileOptions
{
    /** Bit width of the streamed input elements. */
    int inputBits = 8;

    /** Whether input elements are two's complement (sign-extended). */
    bool inputsSigned = true;

    /** Signed-weight handling. */
    SignMode signMode = SignMode::PnSplit;

    /**
     * The paper's fundamental minimization: cull AND gates and adders for
     * zero weight bits.  Disabling keeps the naive Figure-2a structure —
     * an AND gate and a full reduction tree over every row — and exists
     * for the ablation bench.
     */
    bool constantPropagation = true;

    /**
     * Reduce partial sums with a balanced binary tree (logarithmic
     * depth).  Disabling degrades to a linear chain for the ablation.
     */
    bool balancedTree = true;

    /**
     * Insert delay registers so every column's output stream starts at
     * the same cycle, as the SRAM capture wrapper expects.
     */
    bool alignOutputs = true;

    /** Extra captured output bits beyond the no-overflow width. */
    int extraOutputBits = 0;

    /**
     * Maximum loads any single net may drive; 0 disables the limit.
     * When set, high-fanout input broadcasts are pipelined through
     * register repeater trees — the Section VIII fix for "the fanout of
     * the input broadcast saturates the interconnect ... and limits
     * frequency".  Costs one cycle of latency per repeater level.
     */
    std::uint32_t broadcastFanoutLimit = 0;

    /** Seed for the CSD length-2 chain coin flips. */
    std::uint64_t csdSeed = 0x5eed;

    /** Field-wise equality (the experiment design cache keys on it). */
    bool operator==(const CompileOptions &) const = default;
};

/**
 * Runtime knobs of the compiled-tape batch simulation engine (the
 * ExecPlan / BlockSimulator path behind CompiledMatrix::multiplyBatchWide
 * and the batched ESN backend).  Defaults auto-size to the workload and
 * machine; see docs/simulation.md for the threading model.
 */
struct SimOptions
{
    /**
     * Worker threads sharding independent 64*laneWords-lane groups of a
     * batch.  0 = one thread per hardware context (clamped to the number
     * of groups, so small batches never pay thread-spawn overhead).
     */
    unsigned threads = 0;

    /**
     * 64-bit lane-words processed per node per pass (W): each netlist
     * pass evaluates 64*laneWords independent vectors.  Must be one of
     * 1, 2, 4, 8; 0 = auto — the widest block the batch can fill,
     * shrunk while the simulator state overflows a conservative
     * mid-level-cache budget; when the batch fills at least one vector
     * register of the dispatched kernel (an AVX2 op covers 4 words,
     * AVX-512 covers 8), the shrink floors at that width so large
     * batches always ride the SIMD sweeps.  Under activity gating the
     * cache shrink is skipped entirely: execution is already blocked
     * into L1-sized segments, and the widest fillable block amortizes
     * the gated sweeps' per-op overhead over the most lanes.
     */
    unsigned laneWords = 0;

    /**
     * SIMD kernel executing the settle/commit sweeps and transposes
     * (see circuit/kernels.h).  nullptr = the process-wide kernel
     * picked by runtime CPU detection (overridable with the
     * SPATIAL_KERNEL environment variable); tests and the throughput
     * bench inject specific kernels to compare dispatch targets.
     */
    const circuit::kernels::Kernel *kernel = nullptr;

    /**
     * Segmented, activity-gated execution (circuit::Segmentation): the
     * tapes run as cache-sized segments settled and committed in one
     * fused pass each, and a segment is skipped entirely in cycles
     * where its dependency frontier did not change — bit-exact
     * (outputs and toggle counts) with the full sweeps, and the big
     * win on the drain cycles of a bit-serial stream, where most of
     * the circuit is provably quiescent.  Disabling falls back to the
     * monolithic settle/commit sweeps.
     */
    bool activityGating = true;

    /**
     * Working-set target per segment in KiB for activity-gated
     * execution: smaller segments gate at a finer grain (more skipped
     * work) but pay more per-segment bookkeeping.  The default keeps a
     * segment's slice of the value array L1-resident between its
     * settle and its commit — measured fastest around 2-8 KiB on the
     * acceptance workload, degrading past the L1 size.
     */
    unsigned segmentKib = 4;

    /**
     * Execute through the design's attached JIT module
     * (circuit::jit) when one matching this configuration is present:
     * straight-line native code generated per design — constant-folded
     * slot offsets, per-kind specialization, the segment gating's
     * change masks baked in — replacing the interpreted tape sweeps.
     * The engine never compiles inline: callers admit a design with
     * CompiledMatrix::ensureJit() (the serving DesignStore does this
     * at admission), and any design without a matching module — cold,
     * evicted, or on a toolchain-less host — runs the interpreted
     * tape with identical outputs and toggle counts.
     */
    bool jit = false;
};

} // namespace spatial::core

#endif // SPATIAL_CORE_OPTIONS_H
