#include "core/compiled_matrix.h"

#include <algorithm>

#include "circuit/exec_plan.h"
#include "circuit/jit.h"
#include "circuit/wide_simulator.h"
#include "core/batch_engine.h"
#include "core/latency.h"
#include "matrix/bits.h"

namespace spatial::core
{

const circuit::ExecPlan &
CompiledMatrix::plan() const
{
    SPATIAL_ASSERT(plan_ != nullptr,
                   "design has no execution plan (not built by the "
                   "compiler?)");
    return *plan_;
}

std::uint32_t
CompiledMatrix::paperLatencyCycles() const
{
    return eq5Cycles(options_.inputBits, weightBits_, rows_);
}

std::uint32_t
CompiledMatrix::initiationInterval() const
{
    return initiationIntervalCycles(outputBits_);
}

std::vector<std::int64_t>
CompiledMatrix::multiply(const std::vector<std::int64_t> &a) const
{
    circuit::Simulator sim(netlist_);
    return multiplyWith(sim, a);
}

std::vector<std::int64_t>
CompiledMatrix::multiplyWith(circuit::Simulator &sim,
                             const std::vector<std::int64_t> &a) const
{
    SPATIAL_ASSERT(a.size() == rows_, "input length ", a.size(),
                   " != rows ", rows_);
    const int bwi = options_.inputBits;
    for ([[maybe_unused]] const auto v : a) {
        if (options_.inputsSigned) {
            SPATIAL_ASSERT(v >= minSigned(bwi) && v <= maxSigned(bwi),
                           "input ", v, " out of signed ", bwi, "-bit range");
        } else {
            SPATIAL_ASSERT(v >= 0 && v <= maxUnsigned(bwi), "input ", v,
                           " out of unsigned ", bwi, "-bit range");
        }
    }

    sim.reset();
    std::vector<std::uint8_t> bits(rows_, 0);
    std::vector<std::uint64_t> raw(cols_, 0);

    for (std::uint32_t cycle = 0; cycle < drainCycles_; ++cycle) {
        // Input shift registers: stream the low bits, then sign-extend
        // (zero-extend for unsigned inputs) until the array drains.
        for (std::size_t r = 0; r < rows_; ++r) {
            const auto word = static_cast<std::uint64_t>(a[r]);
            if (cycle < static_cast<std::uint32_t>(bwi)) {
                bits[r] = static_cast<std::uint8_t>((word >> cycle) & 1u);
            } else {
                bits[r] = options_.inputsSigned && a[r] < 0 ? 1 : 0;
            }
        }
        sim.step(bits);

        // Output capture shift registers.
        for (std::size_t c = 0; c < cols_; ++c) {
            const auto &out = outputs_[c];
            if (out.node == circuit::kNoNode)
                continue;
            const std::int64_t t =
                static_cast<std::int64_t>(cycle) - out.lsbLatency;
            if (t >= 0 && t < outputBits_ && sim.outputBit(out.node))
                raw[c] |= std::uint64_t{1} << t;
        }
    }

    // Sign-extend each captured word from outputBits_ wide.
    std::vector<std::int64_t> result(cols_, 0);
    const std::uint64_t sign_bit = std::uint64_t{1}
                                   << (outputBits_ - 1);
    for (std::size_t c = 0; c < cols_; ++c) {
        std::uint64_t word = raw[c];
        if (word & sign_bit)
            word |= ~((sign_bit << 1) - 1);
        result[c] = static_cast<std::int64_t>(word);
    }
    return result;
}

namespace
{

/**
 * Run one <=64-vector group through a WideSimulator; writes results
 * into rows [first, first+lanes) of `out`.
 */
void
runWideGroup(const CompiledMatrix &design, const IntMatrix &batch,
             std::size_t first, std::size_t lanes,
             circuit::WideSimulator &sim, IntMatrix &out)
{
    const std::size_t rows = design.rows();
    const std::size_t cols = design.cols();
    const int bwi = design.options().inputBits;
    const bool inputs_signed = design.options().inputsSigned;
    const int out_bits = design.outputBits();

    sim.reset();
    std::vector<std::uint64_t> words(rows, 0);
    std::vector<std::vector<std::uint64_t>> raw(
        cols, std::vector<std::uint64_t>(lanes, 0));

    for (std::uint32_t cycle = 0; cycle < design.drainCycles(); ++cycle) {
        for (std::size_t r = 0; r < rows; ++r) {
            std::uint64_t word = 0;
            for (std::size_t l = 0; l < lanes; ++l) {
                const std::int64_t v = batch.at(first + l, r);
                std::uint64_t bit;
                if (cycle < static_cast<std::uint32_t>(bwi))
                    bit = (static_cast<std::uint64_t>(v) >> cycle) & 1u;
                else
                    bit = inputs_signed && v < 0 ? 1u : 0u;
                word |= bit << l;
            }
            words[r] = word;
        }
        sim.step(words);

        for (std::size_t c = 0; c < cols; ++c) {
            const auto &output = design.outputs()[c];
            if (output.node == circuit::kNoNode)
                continue;
            const std::int64_t t =
                static_cast<std::int64_t>(cycle) - output.lsbLatency;
            if (t < 0 || t >= out_bits)
                continue;
            const std::uint64_t word = sim.outputWord(output.node);
            for (std::size_t l = 0; l < lanes; ++l)
                if ((word >> l) & 1u)
                    raw[c][l] |= std::uint64_t{1} << t;
        }
    }

    const std::uint64_t sign_bit = std::uint64_t{1} << (out_bits - 1);
    for (std::size_t l = 0; l < lanes; ++l) {
        for (std::size_t c = 0; c < cols; ++c) {
            std::uint64_t word = raw[c][l];
            if (word & sign_bit)
                word |= ~((sign_bit << 1) - 1);
            out.at(first + l, c) = static_cast<std::int64_t>(word);
        }
    }
}

} // namespace

IntMatrix
CompiledMatrix::multiplyBatchWide(const IntMatrix &batch,
                                  const SimOptions &sim_options) const
{
    return runBatchWide(*this, batch, sim_options);
}

IntMatrix
CompiledMatrix::multiplyBatchWideLegacy(const IntMatrix &batch) const
{
    SPATIAL_ASSERT(batch.cols() == rows_, "batch width ", batch.cols(),
                   " != rows ", rows_);
    circuit::WideSimulator sim(netlist_);
    IntMatrix out(batch.rows(), cols_);
    for (std::size_t first = 0; first < batch.rows(); first += 64) {
        const std::size_t lanes =
            std::min<std::size_t>(64, batch.rows() - first);
        runWideGroup(*this, batch, first, lanes, sim, out);
    }
    return out;
}

namespace
{

/**
 * The segmentation op budget `options` resolves to at `lane_words` —
 * the key half of the (W, gated, ops) triple a module's tables are
 * matched on.  Gated budgets depend on W, so each gated W needs its
 * own module.
 */
std::size_t
jitOpsPerSegment(const SimOptions &options, unsigned lane_words)
{
    if (!options.activityGating)
        return 0;
    return circuit::Segmentation::opsForBudget(options.segmentKib,
                                               lane_words);
}

} // namespace

std::shared_ptr<const circuit::jit::JitModule>
CompiledMatrix::jitFor(unsigned lane_words, bool gated,
                       std::size_t ops_per_segment) const
{
    const std::lock_guard<std::mutex> lock(jit_->mutex);
    for (const auto &module : jit_->modules)
        if (module->tables(lane_words, gated, ops_per_segment) != nullptr)
            return module;
    return nullptr;
}

std::shared_ptr<const circuit::jit::JitModule>
CompiledMatrix::ensureJit(const SimOptions &options,
                          unsigned lane_words) const
{
    const bool gated = options.activityGating;
    const std::size_t ops = jitOpsPerSegment(options, lane_words);
    if (auto existing = jitFor(lane_words, gated, ops))
        return existing;

    // Compile outside the lock: the out-of-process cc run takes
    // seconds, and concurrent jitFor() lookups (engine workers on
    // other designs' modules) must not stall behind it.
    circuit::jit::JitSpec spec;
    if (gated) {
        spec.segmentation = plan().segmentation(ops);
        // The engine only ever samples the output columns between
        // settle() and commit(), so every other single-segment comb
        // value may live in a vector register of its fused step
        // (JitSpec::sampledNodes): per-node probes of such slots go
        // through the interpreter or a spec without this list.
        std::vector<circuit::NodeId> sampled;
        sampled.reserve(outputs_.size());
        for (const auto &output : outputs_)
            sampled.push_back(output.node);
        spec.sampledNodes = std::move(sampled);
    }
    spec.laneWords = {lane_words};
    auto module = circuit::jit::compileJitModule(plan(), spec);
    if (module == nullptr)
        return nullptr;

    const std::lock_guard<std::mutex> lock(jit_->mutex);
    // A concurrent ensureJit for the same configuration may have won
    // the race; keep its module and drop ours (dtor unloads it).
    for (const auto &attached : jit_->modules)
        if (attached->tables(lane_words, gated, ops) != nullptr)
            return attached;
    jit_->modules.push_back(module);
    return module;
}

std::size_t
CompiledMatrix::jitModuleCount() const
{
    const std::lock_guard<std::mutex> lock(jit_->mutex);
    return jit_->modules.size();
}

double
CompiledMatrix::jitCompileSeconds() const
{
    const std::lock_guard<std::mutex> lock(jit_->mutex);
    double total = 0;
    for (const auto &module : jit_->modules)
        total += module->compileSeconds();
    return total;
}

IntMatrix
CompiledMatrix::multiplyBatch(const IntMatrix &batch) const
{
    SPATIAL_ASSERT(batch.cols() == rows_, "batch width ", batch.cols(),
                   " != rows ", rows_);
    circuit::Simulator sim(netlist_);
    IntMatrix out(batch.rows(), cols_);
    std::vector<std::int64_t> a(rows_);
    for (std::size_t b = 0; b < batch.rows(); ++b) {
        for (std::size_t r = 0; r < rows_; ++r)
            a[r] = batch.at(b, r);
        const auto o = multiplyWith(sim, a);
        for (std::size_t c = 0; c < cols_; ++c)
            out.at(b, c) = o[c];
    }
    return out;
}

} // namespace spatial::core
