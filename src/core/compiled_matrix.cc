#include "core/compiled_matrix.h"

#include <algorithm>

#include "circuit/exec_plan.h"
#include "circuit/wide_simulator.h"
#include "core/batch_engine.h"
#include "core/latency.h"
#include "matrix/bits.h"

namespace spatial::core
{

const circuit::ExecPlan &
CompiledMatrix::plan() const
{
    SPATIAL_ASSERT(plan_ != nullptr,
                   "design has no execution plan (not built by the "
                   "compiler?)");
    return *plan_;
}

std::uint32_t
CompiledMatrix::paperLatencyCycles() const
{
    return eq5Cycles(options_.inputBits, weightBits_, rows_);
}

std::uint32_t
CompiledMatrix::initiationInterval() const
{
    return initiationIntervalCycles(outputBits_);
}

std::vector<std::int64_t>
CompiledMatrix::multiply(const std::vector<std::int64_t> &a) const
{
    circuit::Simulator sim(netlist_);
    return multiplyWith(sim, a);
}

std::vector<std::int64_t>
CompiledMatrix::multiplyWith(circuit::Simulator &sim,
                             const std::vector<std::int64_t> &a) const
{
    SPATIAL_ASSERT(a.size() == rows_, "input length ", a.size(),
                   " != rows ", rows_);
    const int bwi = options_.inputBits;
    for ([[maybe_unused]] const auto v : a) {
        if (options_.inputsSigned) {
            SPATIAL_ASSERT(v >= minSigned(bwi) && v <= maxSigned(bwi),
                           "input ", v, " out of signed ", bwi, "-bit range");
        } else {
            SPATIAL_ASSERT(v >= 0 && v <= maxUnsigned(bwi), "input ", v,
                           " out of unsigned ", bwi, "-bit range");
        }
    }

    sim.reset();
    std::vector<std::uint8_t> bits(rows_, 0);
    std::vector<std::uint64_t> raw(cols_, 0);

    for (std::uint32_t cycle = 0; cycle < drainCycles_; ++cycle) {
        // Input shift registers: stream the low bits, then sign-extend
        // (zero-extend for unsigned inputs) until the array drains.
        for (std::size_t r = 0; r < rows_; ++r) {
            const auto word = static_cast<std::uint64_t>(a[r]);
            if (cycle < static_cast<std::uint32_t>(bwi)) {
                bits[r] = static_cast<std::uint8_t>((word >> cycle) & 1u);
            } else {
                bits[r] = options_.inputsSigned && a[r] < 0 ? 1 : 0;
            }
        }
        sim.step(bits);

        // Output capture shift registers.
        for (std::size_t c = 0; c < cols_; ++c) {
            const auto &out = outputs_[c];
            if (out.node == circuit::kNoNode)
                continue;
            const std::int64_t t =
                static_cast<std::int64_t>(cycle) - out.lsbLatency;
            if (t >= 0 && t < outputBits_ && sim.outputBit(out.node))
                raw[c] |= std::uint64_t{1} << t;
        }
    }

    // Sign-extend each captured word from outputBits_ wide.
    std::vector<std::int64_t> result(cols_, 0);
    const std::uint64_t sign_bit = std::uint64_t{1}
                                   << (outputBits_ - 1);
    for (std::size_t c = 0; c < cols_; ++c) {
        std::uint64_t word = raw[c];
        if (word & sign_bit)
            word |= ~((sign_bit << 1) - 1);
        result[c] = static_cast<std::int64_t>(word);
    }
    return result;
}

namespace
{

/**
 * Run one <=64-vector group through a WideSimulator; writes results
 * into rows [first, first+lanes) of `out`.
 */
void
runWideGroup(const CompiledMatrix &design, const IntMatrix &batch,
             std::size_t first, std::size_t lanes,
             circuit::WideSimulator &sim, IntMatrix &out)
{
    const std::size_t rows = design.rows();
    const std::size_t cols = design.cols();
    const int bwi = design.options().inputBits;
    const bool inputs_signed = design.options().inputsSigned;
    const int out_bits = design.outputBits();

    sim.reset();
    std::vector<std::uint64_t> words(rows, 0);
    std::vector<std::vector<std::uint64_t>> raw(
        cols, std::vector<std::uint64_t>(lanes, 0));

    for (std::uint32_t cycle = 0; cycle < design.drainCycles(); ++cycle) {
        for (std::size_t r = 0; r < rows; ++r) {
            std::uint64_t word = 0;
            for (std::size_t l = 0; l < lanes; ++l) {
                const std::int64_t v = batch.at(first + l, r);
                std::uint64_t bit;
                if (cycle < static_cast<std::uint32_t>(bwi))
                    bit = (static_cast<std::uint64_t>(v) >> cycle) & 1u;
                else
                    bit = inputs_signed && v < 0 ? 1u : 0u;
                word |= bit << l;
            }
            words[r] = word;
        }
        sim.step(words);

        for (std::size_t c = 0; c < cols; ++c) {
            const auto &output = design.outputs()[c];
            if (output.node == circuit::kNoNode)
                continue;
            const std::int64_t t =
                static_cast<std::int64_t>(cycle) - output.lsbLatency;
            if (t < 0 || t >= out_bits)
                continue;
            const std::uint64_t word = sim.outputWord(output.node);
            for (std::size_t l = 0; l < lanes; ++l)
                if ((word >> l) & 1u)
                    raw[c][l] |= std::uint64_t{1} << t;
        }
    }

    const std::uint64_t sign_bit = std::uint64_t{1} << (out_bits - 1);
    for (std::size_t l = 0; l < lanes; ++l) {
        for (std::size_t c = 0; c < cols; ++c) {
            std::uint64_t word = raw[c][l];
            if (word & sign_bit)
                word |= ~((sign_bit << 1) - 1);
            out.at(first + l, c) = static_cast<std::int64_t>(word);
        }
    }
}

} // namespace

IntMatrix
CompiledMatrix::multiplyBatchWide(const IntMatrix &batch,
                                  const SimOptions &sim_options) const
{
    return runBatchWide(*this, batch, sim_options);
}

IntMatrix
CompiledMatrix::multiplyBatchWideLegacy(const IntMatrix &batch) const
{
    SPATIAL_ASSERT(batch.cols() == rows_, "batch width ", batch.cols(),
                   " != rows ", rows_);
    circuit::WideSimulator sim(netlist_);
    IntMatrix out(batch.rows(), cols_);
    for (std::size_t first = 0; first < batch.rows(); first += 64) {
        const std::size_t lanes =
            std::min<std::size_t>(64, batch.rows() - first);
        runWideGroup(*this, batch, first, lanes, sim, out);
    }
    return out;
}

IntMatrix
CompiledMatrix::multiplyBatch(const IntMatrix &batch) const
{
    SPATIAL_ASSERT(batch.cols() == rows_, "batch width ", batch.cols(),
                   " != rows ", rows_);
    circuit::Simulator sim(netlist_);
    IntMatrix out(batch.rows(), cols_);
    std::vector<std::int64_t> a(rows_);
    for (std::size_t b = 0; b < batch.rows(); ++b) {
        for (std::size_t r = 0; r < rows_; ++r)
            a[r] = batch.at(b, r);
        const auto o = multiplyWith(sim, a);
        for (std::size_t c = 0; c < cols_; ++c)
            out.at(b, c) = o[c];
    }
    return out;
}

} // namespace spatial::core
