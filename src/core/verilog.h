/**
 * @file
 * SystemVerilog emission for compiled designs.
 *
 * The paper's flow "coded our design in SystemVerilog and ran synthesis
 * in Xilinx Vivado"; this exporter produces the equivalent synthesizable
 * RTL for any compiled matrix so the generated designs can be taken to
 * a real tool chain.  One `logic` net per netlist component, bit-serial
 * adders/subtractors as two-register always_ff processes, and a
 * synchronous reset that restores the power-on state the simulator
 * models (subtractor carries reset to 1).
 */

#ifndef SPATIAL_CORE_VERILOG_H
#define SPATIAL_CORE_VERILOG_H

#include <iosfwd>
#include <string>

#include "core/compiled_matrix.h"

namespace spatial::core
{

/** Options for RTL emission. */
struct VerilogOptions
{
    std::string moduleName = "spatial_mm";
};

/**
 * Emit a synthesizable SystemVerilog module for the design.
 *
 * Interface: `clk`, synchronous `rst`, one input bit per matrix row
 * (`in_bits[rows-1:0]`, LSb-first streams), one output bit per column
 * (`out_bits[cols-1:0]`).  Result bit t of column c appears on
 * `out_bits[c]` at cycle `lsbLatency + t` after reset release, exactly
 * as in the cycle-accurate simulator.
 */
void writeVerilog(const CompiledMatrix &design, std::ostream &os,
                  const VerilogOptions &options = {});

/** Convenience: emit to a string. */
std::string toVerilog(const CompiledMatrix &design,
                      const VerilogOptions &options = {});

} // namespace spatial::core

#endif // SPATIAL_CORE_VERILOG_H
