#include "core/batch_engine.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/compiled_matrix.h"
#include "matrix/bits.h"

namespace spatial::core
{

namespace
{

/** Sign-extend a captured word from `out_bits` wide. */
std::int64_t
signExtend(std::uint64_t word, int out_bits)
{
    const std::uint64_t sign_bit = std::uint64_t{1} << (out_bits - 1);
    if (word & sign_bit)
        word |= ~((sign_bit << 1) - 1);
    return static_cast<std::int64_t>(word);
}

/** The design's cached segmentation for gated runs; null when off. */
std::shared_ptr<const circuit::Segmentation>
segmentationFor(const CompiledMatrix &design, const SimOptions &options,
                unsigned lane_words)
{
    if (!options.activityGating)
        return nullptr;
    return design.plan().segmentation(circuit::Segmentation::opsForBudget(
        options.segmentKib, lane_words));
}

/**
 * The design's attached JIT module matching this run's configuration,
 * or null (interpreter).  Null whenever SimOptions::jit is off, and
 * for cold designs nobody admitted with ensureJit() — the engine never
 * compiles inline.
 */
std::shared_ptr<const circuit::jit::JitModule>
jitModuleFor(const CompiledMatrix &design, const SimOptions &options,
             unsigned lane_words)
{
    if (!options.jit)
        return nullptr;
    return design.jitFor(
        lane_words, options.activityGating,
        options.activityGating ? circuit::Segmentation::opsForBudget(
                                     options.segmentKib, lane_words)
                               : 0);
}

/**
 * Per-worker execution context: one simulator plus the input/capture
 * planes, reused across every group the worker processes.  Product
 * paths skip toggle accounting; the activity probe turns it on.
 */
template <unsigned W, bool CountToggles = false>
class GroupRunner
{
  public:
    GroupRunner(const CompiledMatrix &design,
                const circuit::kernels::Kernel &kernel,
                const SimOptions &options)
        : design_(design),
          sim_(design.plan(), &kernel, segmentationFor(design, options, W),
               jitModuleFor(design, options, W)),
          jitRequested_(options.jit),
          planeStride_(design.rows() * W),
          planes_((static_cast<std::size_t>(design.options().inputBits) + 1) *
                      planeStride_,
                  0),
          capture_(design.cols() *
                       static_cast<std::size_t>(design.outputBits()) * W,
                   0)
    {}

    /**
     * Run rows [first, first+lanes) of `batch` through the netlist and
     * write the decoded products into the same rows of `out`.
     */
    void
    run(const IntMatrix &batch, std::size_t first, std::size_t lanes,
        IntMatrix &out)
    {
        const std::size_t rows = design_.rows();
        const std::size_t cols = design_.cols();
        const int bwi = design_.options().inputBits;
        const bool inputs_signed = design_.options().inputsSigned;
        const int out_bits = design_.outputBits();
        const std::int64_t *data = batch.data().data();
        const std::size_t batch_cols = batch.cols();

        sim_.reset();

        // Bit-transpose the group into port-major lane-word planes:
        // plane b holds bit b of every vector element, plane bwi the
        // sign extension.  Built once per group; the drain loop below
        // just steps a plane pointer per cycle.  Rows are tiled eight
        // at a time so each lane contributes one contiguous 64-byte
        // read instead of eight 2-KiB-strided ones (the batch is
        // row-major; walking it column-by-column thrashes the cache).
        const std::uint64_t value_mask =
            (std::uint64_t{1} << bwi) - 1; // inputBits <= 32
        for (std::size_t r0 = 0; r0 < rows; r0 += 8) {
            const std::size_t tile = std::min<std::size_t>(8, rows - r0);
            for (unsigned wi = 0; wi < W; ++wi) {
                std::uint64_t blocks[8][64] = {};
                const std::size_t lane0 = std::size_t{wi} * 64;
                const std::size_t count =
                    lanes > lane0 ? std::min<std::size_t>(64, lanes - lane0)
                                  : 0;
                for (std::size_t l = 0; l < count; ++l) {
                    const std::int64_t *lane_row =
                        data + (first + lane0 + l) * batch_cols + r0;
                    for (std::size_t t = 0; t < tile; ++t) {
                        const std::int64_t v = lane_row[t];
                        // Low bwi bits of the value, sign flag at bwi.
                        std::uint64_t enc =
                            static_cast<std::uint64_t>(v) & value_mask;
                        if (inputs_signed && v < 0)
                            enc |= std::uint64_t{1} << bwi;
                        blocks[t][l] = enc;
                    }
                }
                for (std::size_t t = 0; t < tile; ++t) {
                    sim_.kernel().transpose64(blocks[t]);
                    std::uint64_t *base = planes_.data() + (r0 + t) * W;
                    for (int b = 0; b <= bwi; ++b)
                        base[static_cast<std::size_t>(b) * planeStride_ +
                             wi] = blocks[t][b];
                }
            }
        }

        std::fill(capture_.begin(), capture_.end(), 0);
        const auto &outputs = design_.outputs();
        for (std::uint32_t cycle = 0; cycle < design_.drainCycles();
             ++cycle) {
            const int plane = std::min<int>(static_cast<int>(cycle), bwi);
            sim_.settle(planes_.data() +
                            static_cast<std::size_t>(plane) * planeStride_,
                        rows);
            for (std::size_t c = 0; c < cols; ++c) {
                if (outputs[c].node == circuit::kNoNode)
                    continue;
                const std::int64_t t =
                    static_cast<std::int64_t>(cycle) - outputs[c].lsbLatency;
                if (t < 0 || t >= out_bits)
                    continue;
                const std::uint64_t *src = sim_.outputWords(outputs[c].node);
                std::uint64_t *dst =
                    capture_.data() +
                    (c * static_cast<std::size_t>(out_bits) +
                     static_cast<std::size_t>(t)) *
                        W;
                for (unsigned w = 0; w < W; ++w)
                    dst[w] = src[w];
            }
            sim_.commit();
        }

        // Decode the captured bit-plane lane-words back to per-lane
        // integers, one 64x64 transpose per (column, lane-word) block.
        // Columns are tiled eight at a time so each lane's results are
        // written as one contiguous 64-byte burst into the row-major
        // output instead of eight 2-KiB-strided stores.
        for (std::size_t c0 = 0; c0 < cols; c0 += 8) {
            const std::size_t tile = std::min<std::size_t>(8, cols - c0);
            for (unsigned wi = 0; wi < W; ++wi) {
                const std::size_t lane0 = std::size_t{wi} * 64;
                if (lane0 >= lanes)
                    break;
                std::uint64_t blocks[8][64] = {};
                for (std::size_t t = 0; t < tile; ++t) {
                    const std::uint64_t *cap =
                        capture_.data() +
                        (c0 + t) * static_cast<std::size_t>(out_bits) * W;
                    for (int b = 0; b < out_bits; ++b)
                        blocks[t][b] =
                            cap[static_cast<std::size_t>(b) * W + wi];
                    sim_.kernel().transpose64(blocks[t]);
                }
                const std::size_t count =
                    std::min<std::size_t>(64, lanes - lane0);
                for (std::size_t l = 0; l < count; ++l) {
                    std::int64_t *lane_row =
                        &out.at(first + lane0 + l, c0);
                    for (std::size_t t = 0; t < tile; ++t)
                        lane_row[t] = signExtend(blocks[t][l], out_bits);
                }
            }
        }

        // The next group's reset() clears the simulator counters, so
        // bank this group's segment accounting now.
        stats_.segmentsExecuted += sim_.segmentsExecuted();
        stats_.segmentsSkipped += sim_.segmentsSkipped();
        if (jitRequested_) {
            if (sim_.jitActive())
                ++stats_.jitGroups;
            else
                ++stats_.interpFallbackGroups;
        }
    }

    const circuit::BlockSimulator<W, CountToggles> &sim() const
    {
        return sim_;
    }

    /** Segment accounting across this runner's groups. */
    const BatchStats &stats() const { return stats_; }

  private:
    const CompiledMatrix &design_;
    circuit::BlockSimulator<W, CountToggles> sim_;
    bool jitRequested_;       //!< options.jit (for fallback accounting)
    std::size_t planeStride_; //!< words per input plane (rows * W)
    std::vector<std::uint64_t> planes_;
    std::vector<std::uint64_t> capture_;
    BatchStats stats_;
};

/** Thread-count resolution shared by runBatchWideT and the reporters. */
unsigned
resolveThreads(const SimOptions &options, std::size_t num_groups)
{
    unsigned threads = options.threads != 0
                           ? options.threads
                           : std::thread::hardware_concurrency();
    return std::max(1u, std::min<unsigned>(
                            threads,
                            static_cast<unsigned>(num_groups)));
}

template <unsigned W>
void
runBatchWideT(const CompiledMatrix &design, const IntMatrix &batch,
              const SimOptions &options,
              const circuit::kernels::Kernel &kernel, IntMatrix &out,
              BatchStats *stats)
{
    constexpr std::size_t lane_cap = 64 * W;
    const std::size_t num_groups =
        (batch.rows() + lane_cap - 1) / lane_cap;
    const unsigned threads = resolveThreads(options, num_groups);

    const auto run_group = [&](GroupRunner<W> &runner, std::size_t g) {
        const std::size_t first = g * lane_cap;
        const std::size_t lanes =
            std::min<std::size_t>(lane_cap, batch.rows() - first);
        runner.run(batch, first, lanes, out);
    };

    if (threads == 1) {
        GroupRunner<W> runner(design, kernel, options);
        for (std::size_t g = 0; g < num_groups; ++g)
            run_group(runner, g);
        if (stats != nullptr)
            stats->add(runner.stats());
        return;
    }

    // Groups are fully independent (disjoint output rows, private
    // simulator state), so a shared atomic cursor is the whole schedule.
    std::atomic<std::size_t> next{0};
    std::vector<BatchStats> worker_stats(threads);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        pool.emplace_back([&, i] {
            GroupRunner<W> runner(design, kernel, options);
            for (std::size_t g = next.fetch_add(1); g < num_groups;
                 g = next.fetch_add(1))
                run_group(runner, g);
            worker_stats[i] = runner.stats();
        });
    }
    for (auto &worker : pool)
        worker.join();
    if (stats != nullptr)
        for (const auto &ws : worker_stats)
            stats->add(ws);
}

/**
 * Pick W for a design/batch pair on a given kernel.  Start from the
 * widest block the batch can fill (capped at the engine's maximum of
 * 8), then shrink while the simulator's value-array footprint — whose
 * accesses are random — overflows a conservative mid-level-cache
 * budget.  When the batch fills at least one vector register, the
 * shrink floors at the kernel's vector width: below it the pass count
 * stays the same but the sweeps lose their SIMD width, and measurement
 * shows one over-budget W=4 AVX2 pass beats four cached scalar passes
 * (18.6 ms vs 29.3 ms on the 26k-node acceptance design).  When the
 * batch cannot fill a vector, the floor does not apply — there the
 * same measurement flips (one half-empty W=8 AVX-512 pass is 2.7x
 * slower than two cached scalar passes), so the kernel's scalar
 * fallback at a cache-fitting W is the fast path.
 */
unsigned
autoLaneWords(const CompiledMatrix &design, std::size_t batch_rows,
              const circuit::kernels::Kernel &kernel, bool activity_gating)
{
    constexpr std::size_t cache_budget_bytes = 256 * 1024;
    const std::size_t words_needed = (batch_rows + 63) / 64;
    const std::size_t state_bytes_per_word =
        design.plan().numSlots() * sizeof(std::uint64_t);
    const unsigned vec = std::min(8u, std::max(1u, kernel.vectorWords));
    const unsigned floor = words_needed >= vec ? vec : 1;

    unsigned w = 1;
    while (w < 8 && words_needed >= 2 * w)
        w *= 2;
    // Activity-gated execution is cache-blocked per segment (the fused
    // pass works an L1-sized slice at a time) and skips most of the
    // array on quiescent cycles, so the whole-array cache-pressure
    // shrink below does not apply — and the widest block the batch can
    // fill amortizes the gated sweeps' per-op overhead over twice the
    // lanes (measured: W=8 gated beats W=4 gated by ~1.2x on the
    // acceptance workload for both vector kernels).
    if (activity_gating)
        return w;
    while (w > floor && state_bytes_per_word * w > cache_budget_bytes)
        w /= 2;
    return w;
}

} // namespace

const circuit::kernels::Kernel &
resolvedKernel(const SimOptions &options)
{
    return options.kernel != nullptr ? *options.kernel
                                     : circuit::kernels::activeKernel();
}

unsigned
resolvedLaneWords(const CompiledMatrix &design, const SimOptions &options,
                  std::size_t batch_rows)
{
    return options.laneWords != 0
               ? options.laneWords
               : autoLaneWords(design, batch_rows, resolvedKernel(options),
                               options.activityGating);
}

unsigned
resolvedThreads(const CompiledMatrix &design, const SimOptions &options,
                std::size_t batch_rows)
{
    const std::size_t lane_cap =
        std::size_t{64} * resolvedLaneWords(design, options, batch_rows);
    const std::size_t num_groups =
        batch_rows == 0 ? 0 : (batch_rows + lane_cap - 1) / lane_cap;
    return resolveThreads(options, std::max<std::size_t>(1, num_groups));
}

IntMatrix
runBatchWide(const CompiledMatrix &design, const IntMatrix &batch,
             const SimOptions &options, BatchStats *stats)
{
    // API boundary: keep the shape check alive in Release — a mismatch
    // would otherwise read out of bounds with no diagnostic.
    if (batch.cols() != design.rows())
        SPATIAL_FATAL("batch width ", batch.cols(), " != rows ",
                      design.rows());
    IntMatrix out(batch.rows(), design.cols());
    if (batch.rows() == 0)
        return out;

    const circuit::kernels::Kernel &kernel = resolvedKernel(options);
    const unsigned lane_words =
        resolvedLaneWords(design, options, batch.rows());
    switch (lane_words) {
      case 1:
        runBatchWideT<1>(design, batch, options, kernel, out, stats);
        break;
      case 2:
        runBatchWideT<2>(design, batch, options, kernel, out, stats);
        break;
      case 4:
        runBatchWideT<4>(design, batch, options, kernel, out, stats);
        break;
      case 8:
        runBatchWideT<8>(design, batch, options, kernel, out, stats);
        break;
      default:
        SPATIAL_FATAL("SimOptions::laneWords must be 0, 1, 2, 4, or 8; got ",
                      lane_words);
    }
    return out;
}

double
measureSwitchingActivity(const CompiledMatrix &design,
                         const IntMatrix &batch,
                         const SimOptions &options)
{
    if (batch.rows() < 1 || batch.rows() > 64)
        SPATIAL_FATAL("activity probe takes 1..64 vectors, got ",
                      batch.rows());
    // One 64-lane group on the design's cached plan; the runner's flat
    // planes replace the per-call WideSimulator and nested scratch
    // vectors of the interpreter path.  Gating does not perturb the
    // measurement: a skipped segment has exactly zero toggles.
    GroupRunner<1, true> runner(design, resolvedKernel(options), options);
    IntMatrix scratch(batch.rows(), design.cols());
    runner.run(batch, 0, batch.rows(), scratch);
    return runner.sim().measuredActivity(batch.rows());
}

TapeGemv::TapeGemv(const CompiledMatrix &design, const SimOptions &options)
    : design_(design),
      sim_(design.plan(), &resolvedKernel(options),
           segmentationFor(design, options, 1),
           jitModuleFor(design, options, 1)),
      jitRequested_(options.jit),
      planes_((static_cast<std::size_t>(design.options().inputBits) + 1) *
                  design.rows(),
              0),
      raw_(design.cols(), 0)
{}

std::vector<std::int64_t>
TapeGemv::multiply(const std::vector<std::int64_t> &x)
{
    std::vector<std::int64_t> out(design_.cols());
    multiplyInto(x, out);
    return out;
}

void
TapeGemv::multiplyInto(const std::vector<std::int64_t> &x,
                       std::vector<std::int64_t> &out)
{
    const std::size_t rows = design_.rows();
    const std::size_t cols = design_.cols();
    const int bwi = design_.options().inputBits;
    const bool inputs_signed = design_.options().inputsSigned;
    const int out_bits = design_.outputBits();

    if (x.size() != rows)
        SPATIAL_FATAL("input length ", x.size(), " != rows ", rows);
    // Per-element range validation stays debug-only, as on the scalar
    // path: it is O(rows) per multiply.
    for ([[maybe_unused]] const auto v : x) {
        if (inputs_signed) {
            SPATIAL_ASSERT(v >= minSigned(bwi) && v <= maxSigned(bwi),
                           "input ", v, " out of signed ", bwi,
                           "-bit range");
        } else {
            SPATIAL_ASSERT(v >= 0 && v <= maxUnsigned(bwi), "input ", v,
                           " out of unsigned ", bwi, "-bit range");
        }
    }

    sim_.reset();
    std::fill(planes_.begin(), planes_.end(), 0);
    for (std::size_t r = 0; r < rows; ++r) {
        const auto word = static_cast<std::uint64_t>(x[r]);
        for (int b = 0; b < bwi; ++b)
            planes_[static_cast<std::size_t>(b) * rows + r] =
                (word >> b) & 1u;
        planes_[static_cast<std::size_t>(bwi) * rows + r] =
            inputs_signed && x[r] < 0 ? 1u : 0u;
    }

    std::fill(raw_.begin(), raw_.end(), 0);
    const auto &outputs = design_.outputs();
    for (std::uint32_t cycle = 0; cycle < design_.drainCycles(); ++cycle) {
        const int plane = std::min<int>(static_cast<int>(cycle), bwi);
        sim_.settle(planes_.data() +
                        static_cast<std::size_t>(plane) * rows,
                    rows);
        for (std::size_t c = 0; c < cols; ++c) {
            if (outputs[c].node == circuit::kNoNode)
                continue;
            const std::int64_t t =
                static_cast<std::int64_t>(cycle) - outputs[c].lsbLatency;
            if (t >= 0 && t < out_bits &&
                (sim_.outputWord(outputs[c].node) & 1u))
                raw_[c] |= std::uint64_t{1} << t;
        }
        sim_.commit();
    }

    // Bank the multiply's segment accounting before the next reset().
    stats_.segmentsExecuted += sim_.segmentsExecuted();
    stats_.segmentsSkipped += sim_.segmentsSkipped();
    if (jitRequested_) {
        if (sim_.jitActive())
            ++stats_.jitGroups;
        else
            ++stats_.interpFallbackGroups;
    }

    out.resize(cols);
    for (std::size_t c = 0; c < cols; ++c)
        out[c] = signExtend(raw_[c], out_bits);
}

} // namespace spatial::core
