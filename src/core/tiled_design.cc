#include "core/tiled_design.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "core/compiler.h"
#include "matrix/pn_split.h"

namespace spatial::core
{

namespace
{

/** Split any tile wider than `max_cols` into equal-ish strips. */
TilePlan
capTileCols(TilePlan plan, std::size_t max_cols)
{
    if (max_cols == 0)
        return plan;
    TilePlan capped;
    capped.lutBudget = plan.lutBudget;
    for (const Tile &tile : plan.tiles) {
        std::size_t begin = tile.colBegin;
        while (begin < tile.colEnd) {
            const std::size_t end =
                std::min(tile.colEnd, begin + max_cols);
            // The ones estimate is per-column additive, so a pro-rata
            // split keeps the plan's accounting roughly honest.
            const std::size_t width = tile.colEnd - tile.colBegin;
            Tile part;
            part.colBegin = begin;
            part.colEnd = end;
            part.estimatedLuts =
                tile.estimatedLuts * (end - begin) / std::max<std::size_t>(1, width);
            capped.tiles.push_back(part);
            begin = end;
        }
    }
    return capped;
}

} // namespace

TiledDesign
TiledDesign::compile(const IntMatrix &weights,
                     const CompileOptions &options,
                     const TileOptions &tile)
{
    if (weights.rows() == 0 || weights.cols() == 0)
        SPATIAL_FATAL("cannot tile an empty matrix");
    const MatrixCompiler compiler(options);

    TiledDesign out;
    out.tileOptions_ = tile;
    out.rows_ = weights.rows();
    out.cols_ = weights.cols();

    // The budget is in compiled ones (the Figure-10 cost model over
    // the P/N split).  onesBudget == 0 disables tiling outright.
    TilePlan plan;
    if (tile.onesBudget == 0) {
        Tile whole;
        whole.colBegin = 0;
        whole.colEnd = weights.cols();
        whole.estimatedLuts = pnSplit(weights).onesCount();
        plan.tiles.push_back(whole);
    } else {
        plan = planColumnTiles(pnSplit(weights), tile.onesBudget);
    }
    plan = capTileCols(std::move(plan), tile.maxTileCols);
    out.plan_ = plan;

    out.tiles_.reserve(plan.tiles.size());
    if (plan.tiles.size() == 1) {
        // Skip the slice copy: the whole matrix is the one tile.
        out.tiles_.push_back(std::make_shared<const CompiledMatrix>(
            compiler.compile(weights)));
        return out;
    }
    for (const Tile &t : plan.tiles)
        out.tiles_.push_back(std::make_shared<const CompiledMatrix>(
            compiler.compile(
                sliceColumns(weights, t.colBegin, t.colEnd))));
    return out;
}

TiledDesign
TiledDesign::fromTiles(
    TilePlan plan,
    std::vector<std::shared_ptr<const CompiledMatrix>> tiles,
    std::size_t rows, const TileOptions &tile)
{
    if (tiles.empty() || plan.tiles.size() != tiles.size())
        SPATIAL_FATAL("tile plan/compiled tile mismatch: ",
                      plan.tiles.size(), " vs ", tiles.size());
    std::size_t col = 0;
    for (std::size_t i = 0; i < tiles.size(); ++i) {
        const Tile &t = plan.tiles[i];
        if (t.colBegin != col || t.colEnd <= t.colBegin)
            SPATIAL_FATAL("tile ", i, " not contiguous at column ",
                          col);
        if (tiles[i] == nullptr || tiles[i]->rows() != rows ||
            tiles[i]->cols() != t.colEnd - t.colBegin)
            SPATIAL_FATAL("tile ", i, " shape mismatch");
        col = t.colEnd;
    }
    TiledDesign out;
    out.plan_ = std::move(plan);
    out.tiles_ = std::move(tiles);
    out.tileOptions_ = tile;
    out.rows_ = rows;
    out.cols_ = col;
    return out;
}

const CompileOptions &
TiledDesign::options() const
{
    return tiles_.front()->options();
}

const CompiledMatrix &
TiledDesign::single() const
{
    if (tiled())
        SPATIAL_FATAL("design is tiled (", tiles_.size(),
                      " tiles); no single CompiledMatrix view");
    return *tiles_.front();
}

const std::shared_ptr<const CompiledMatrix> &
TiledDesign::singlePtr() const
{
    if (tiled())
        SPATIAL_FATAL("design is tiled (", tiles_.size(),
                      " tiles); no single CompiledMatrix view");
    return tiles_.front();
}

std::size_t
TiledDesign::weightOnes() const
{
    std::size_t ones = 0;
    for (const auto &t : tiles_)
        ones += t->weightOnes();
    return ones;
}

std::uint32_t
TiledDesign::drainCycles() const
{
    std::uint32_t drain = 0;
    for (const auto &t : tiles_)
        drain = std::max(drain, t->drainCycles());
    return drain;
}

std::size_t
TiledDesign::jitModuleCount() const
{
    std::size_t n = 0;
    for (const auto &t : tiles_)
        n += t->jitModuleCount();
    return n;
}

double
TiledDesign::jitCompileSeconds() const
{
    double s = 0.0;
    for (const auto &t : tiles_)
        s += t->jitCompileSeconds();
    return s;
}

std::size_t
TiledDesign::netlistNodes() const
{
    std::size_t n = 0;
    for (const auto &t : tiles_)
        n += t->netlist().numNodes();
    return n;
}

std::vector<std::int64_t>
TiledDesign::multiply(const std::vector<std::int64_t> &a) const
{
    if (!tiled())
        return tiles_.front()->multiply(a);
    std::vector<std::int64_t> out(cols_);
    for (std::size_t i = 0; i < tiles_.size(); ++i) {
        const auto part = tiles_[i]->multiply(a);
        std::copy(part.begin(), part.end(),
                  out.begin() +
                      static_cast<std::ptrdiff_t>(plan_.tiles[i].colBegin));
    }
    return out;
}

IntMatrix
TiledDesign::multiplyBatch(const IntMatrix &batch) const
{
    if (!tiled())
        return tiles_.front()->multiplyBatch(batch);
    IntMatrix out(batch.rows(), cols_);
    for (std::size_t i = 0; i < tiles_.size(); ++i) {
        const IntMatrix part = tiles_[i]->multiplyBatch(batch);
        const std::size_t c0 = plan_.tiles[i].colBegin;
        for (std::size_t r = 0; r < part.rows(); ++r)
            for (std::size_t c = 0; c < part.cols(); ++c)
                out.at(r, c0 + c) = part.at(r, c);
    }
    return out;
}

IntMatrix
TiledDesign::multiplyBatchWide(const IntMatrix &batch,
                               const SimOptions &sim,
                               BatchStats *stats) const
{
    if (!tiled())
        return runBatchWide(*tiles_.front(), batch, sim, stats);
    if (batch.cols() != rows_)
        SPATIAL_FATAL("batch width ", batch.cols(),
                      " != design rows ", rows_);

    IntMatrix out(batch.rows(), cols_);

    // Shard whole tiles across workers.  Tiles write disjoint column
    // ranges of `out`, so the only synchronization is the join and the
    // stats merge; inside a tile the engine runs single-threaded —
    // cross-tile parallelism already saturates the requested threads.
    unsigned threads = sim.threads != 0
                           ? sim.threads
                           : std::thread::hardware_concurrency();
    threads = std::max(1u, threads);
    threads = static_cast<unsigned>(std::min<std::size_t>(
        threads, tiles_.size()));
    SimOptions tile_sim = sim;
    tile_sim.threads = 1;

    std::atomic<std::size_t> next{0};
    std::mutex stats_mutex;
    BatchStats total;
    auto work = [&] {
        BatchStats local;
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= tiles_.size())
                break;
            const IntMatrix part =
                runBatchWide(*tiles_[i], batch, tile_sim, &local);
            const std::size_t c0 = plan_.tiles[i].colBegin;
            for (std::size_t r = 0; r < part.rows(); ++r)
                for (std::size_t c = 0; c < part.cols(); ++c)
                    out.at(r, c0 + c) = part.at(r, c);
        }
        std::lock_guard<std::mutex> lock(stats_mutex);
        total.add(local);
    };
    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (unsigned t = 1; t < threads; ++t)
        pool.emplace_back(work);
    work();
    for (auto &t : pool)
        t.join();

    if (stats != nullptr)
        stats->add(total);
    return out;
}

TiledGemv::TiledGemv(const TiledDesign &design, const SimOptions &options)
    : design_(design)
{
    gemvs_.reserve(design.tileCount());
    for (std::size_t i = 0; i < design.tileCount(); ++i)
        gemvs_.push_back(
            std::make_unique<TapeGemv>(design.tile(i), options));
}

std::vector<std::int64_t>
TiledGemv::multiply(const std::vector<std::int64_t> &x)
{
    std::vector<std::int64_t> out(design_.cols());
    multiplyInto(x, out);
    return out;
}

void
TiledGemv::multiplyInto(const std::vector<std::int64_t> &x,
                        std::vector<std::int64_t> &out)
{
    out.resize(design_.cols());
    if (gemvs_.size() == 1) {
        gemvs_.front()->multiplyInto(x, out);
        return;
    }
    for (std::size_t i = 0; i < gemvs_.size(); ++i) {
        gemvs_[i]->multiplyInto(x, scratch_);
        std::copy(scratch_.begin(), scratch_.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(
                                    design_.plan().tiles[i].colBegin));
    }
}

BatchStats
TiledGemv::engineStats() const
{
    BatchStats total;
    for (const auto &g : gemvs_)
        total.add(g->engineStats());
    return total;
}

} // namespace spatial::core
