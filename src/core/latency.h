/**
 * @file
 * Latency accounting for compiled spatial multipliers.
 *
 * The paper's Equation 5 gives Latency = BW_i + BW_w + log2(R) + 2 cycles:
 * the output is BW_i + BW_w bits wide, its LSb emerges after the
 * ceil(log2 R)-deep reduction tree plus one cycle for the bit-position
 * accumulation chain and one for the PN subtraction.  The bit-position
 * chain costs only a single cycle in total because each chain adder's
 * output register doubles as the x2 skew for the next link.
 *
 * The evaluation figures (13-23) quote Eq. 5 cycles at the design's
 * achieved Fmax; the simulator additionally measures the full-precision
 * drain latency, which is larger by the ceil(log2 R) accumulation growth
 * of the exact result width.
 */

#ifndef SPATIAL_CORE_LATENCY_H
#define SPATIAL_CORE_LATENCY_H

#include <cstddef>
#include <cstdint>

namespace spatial::core
{

/** ceil(log2(n)) with log2(0) = log2(1) = 0. */
int ceilLog2(std::size_t n);

/** Equation 5: BW_i + BW_w + ceil(log2 R) + 2 cycles. */
std::uint32_t eq5Cycles(int input_bits, int weight_bits, std::size_t rows);

/** Cycles until the full exact result (no-overflow width) has drained. */
std::uint32_t fullDrainCycles(int input_bits, int weight_bits,
                              std::size_t rows);

/**
 * Steady-state initiation interval between consecutive vectors streamed
 * through the array: every wire carries one result-width stream per
 * vector, so a new vector can enter every output-width cycles.
 */
std::uint32_t initiationIntervalCycles(int output_bits);

/** Convert cycles at a clock in MHz to nanoseconds. */
double cyclesToNs(std::uint32_t cycles, double fmax_mhz);

/**
 * Latency of a batch of vectors: pipeline fill for the first plus one
 * initiation interval per additional vector (the paper's "linear
 * scaling" with batch size).
 */
double batchLatencyNs(std::uint32_t latency_cycles, std::uint32_t ii_cycles,
                      std::size_t batch, double fmax_mhz);

} // namespace spatial::core

#endif // SPATIAL_CORE_LATENCY_H
