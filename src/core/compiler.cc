#include "core/compiler.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "circuit/exec_plan.h"
#include "common/rng.h"
#include "core/latency.h"
#include "matrix/bits.h"
#include "matrix/csd.h"

namespace spatial::core
{

const char *
signModeName(SignMode mode)
{
    switch (mode) {
      case SignMode::Unsigned:
        return "unsigned";
      case SignMode::PnSplit:
        return "pn";
      case SignMode::Csd:
        return "csd";
    }
    return "?";
}

namespace
{

using circuit::Netlist;
using circuit::NodeId;

/**
 * A bit-serial stream under construction: logical bit t of its value is
 * emitted by `node` at cycle t + latency.  Latency may be negative after
 * x2 reinterpretation (earlier cycles implicitly emit 0 because every
 * register resets to 0).
 */
struct Stream
{
    NodeId node;
    std::int32_t latency;
};

using OptStream = std::optional<Stream>;

/** Stateful helper that owns the netlist during construction. */
class Builder
{
  public:
    Builder(Netlist &netlist, const CompileOptions &options)
        : nl_(netlist), opt_(options)
    {}

    NodeId
    const0()
    {
        if (const0_ == circuit::kNoNode)
            const0_ = nl_.addConst0();
        return const0_;
    }

    NodeId
    const1()
    {
        if (const1_ == circuit::kNoNode)
            const1_ = nl_.addConst1();
        return const1_;
    }

    /** Delay a stream so its latency becomes exactly `target`. */
    Stream
    delayTo(Stream s, std::int32_t target)
    {
        SPATIAL_ASSERT(target >= s.latency, "cannot advance a stream: ",
                       s.latency, " -> ", target);
        const auto cycles = static_cast<std::uint32_t>(target - s.latency);
        return {nl_.addDelay(s.node, cycles), target};
    }

    /** Registered bit-serial addition of two aligned streams. */
    Stream
    add(Stream a, Stream b)
    {
        const std::int32_t t = std::max(a.latency, b.latency);
        a = delayTo(a, t);
        b = delayTo(b, t);
        return {nl_.addAdder(a.node, b.node), t + 1};
    }

    Stream
    dff(Stream s)
    {
        return {nl_.addDff(s.node), s.latency + 1};
    }

    /**
     * Reduce partial products to one stream.  Balanced mode builds the
     * logarithmic tree; the odd stream at a level passes through a DFF
     * (the culled adder of Figure 2b) to stay aligned with its siblings.
     */
    OptStream
    reduce(std::vector<Stream> leaves)
    {
        if (leaves.empty())
            return std::nullopt;
        if (!opt_.balancedTree) {
            // Ablation: linear accumulation chain, depth O(n).
            Stream acc = leaves[0];
            for (std::size_t i = 1; i < leaves.size(); ++i)
                acc = add(acc, leaves[i]);
            return acc;
        }
        while (leaves.size() > 1) {
            std::vector<Stream> next;
            next.reserve(leaves.size() / 2 + 1);
            for (std::size_t i = 0; i + 1 < leaves.size(); i += 2)
                next.push_back(add(leaves[i], leaves[i + 1]));
            if (leaves.size() % 2 != 0)
                next.push_back(dff(leaves.back()));
            leaves = std::move(next);
        }
        return leaves[0];
    }

    /**
     * Combine per-bit-plane sums into sum_k 2^k * planes[k].
     *
     * Walks MSb to LSb computing acc_k = planes[k] + 2*acc_{k+1}.  The
     * x2 is one cycle of skew: a stream reinterpreted as twice its value
     * has latency one lower, so each chain adder's own output register
     * usually provides the skew for free and the whole chain costs a
     * single cycle of latency (the "+1 to accumulate across bit
     * positions" of Equation 5).
     */
    OptStream
    bitPositionChain(const std::vector<OptStream> &planes)
    {
        OptStream acc;
        for (std::size_t i = planes.size(); i-- > 0;) {
            const OptStream &plane = planes[i];
            if (!acc) {
                acc = plane;
                continue;
            }
            const Stream doubled{acc->node, acc->latency - 1};
            if (!plane) {
                acc = doubled; // Empty plane: pure x2, no hardware.
                continue;
            }
            acc = add(*plane, doubled);
        }
        return acc;
    }

    /** Final signed merge: p - n with a bit-serial subtractor. */
    OptStream
    subtract(OptStream p, OptStream n)
    {
        if (!n) {
            return p;
        }
        if (!p) {
            // 0 - n: the constant-0 stream aligns at any latency.
            return Stream{nl_.addSub(const0(), n->node), n->latency + 1};
        }
        const std::int32_t t = std::max(p->latency, n->latency);
        const Stream pa = delayTo(*p, t);
        const Stream na = delayTo(*n, t);
        return Stream{nl_.addSub(pa.node, na.node), t + 1};
    }

  private:
    Netlist &nl_;
    const CompileOptions &opt_;
    NodeId const0_ = circuit::kNoNode;
    NodeId const1_ = circuit::kNoNode;
};

/**
 * Per-row broadcast endpoints with an optional fanout cap.
 *
 * Without a cap every consumer taps the row's input directly (the
 * paper's baseline, whose first-stage fanout limits Fmax).  With a cap,
 * each row's input feeds a balanced tree of register repeaters so no
 * net drives more than `limit` loads — the Section VIII pipelined
 * broadcast — and every endpoint of a row sits at the same register
 * depth, which the stream-latency bookkeeping absorbs.
 */
class BroadcastNetwork
{
  public:
    BroadcastNetwork(Netlist &netlist, const std::vector<NodeId> &inputs,
                     const std::vector<std::size_t> &demand,
                     std::uint32_t limit)
        : limit_(limit)
    {
        endpoints_.resize(inputs.size());
        cursors_.assign(inputs.size(), 0);
        for (std::size_t r = 0; r < inputs.size(); ++r) {
            std::vector<Stream> level{Stream{inputs[r], 0}};
            if (limit > 0 && demand[r] > limit) {
                const std::size_t target =
                    (demand[r] + limit - 1) / limit;
                while (level.size() < target) {
                    const std::size_t grow =
                        std::min<std::size_t>(level.size() * limit,
                                              target);
                    std::vector<Stream> next;
                    next.reserve(grow);
                    for (std::size_t i = 0; i < grow; ++i) {
                        const Stream &parent = level[i % level.size()];
                        next.push_back(Stream{
                            netlist.addDff(parent.node),
                            parent.latency + 1});
                    }
                    level = std::move(next);
                }
            }
            endpoints_[r] = std::move(level);
        }
    }

    /** Endpoint for the row's next consumer. */
    Stream
    next(std::size_t row)
    {
        const auto &level = endpoints_[row];
        if (limit_ == 0 || level.size() == 1)
            return level[0];
        const std::size_t idx = cursors_[row]++ / limit_;
        SPATIAL_ASSERT(idx < level.size(), "broadcast demand exceeded");
        return level[idx];
    }

  private:
    std::vector<std::vector<Stream>> endpoints_;
    std::vector<std::size_t> cursors_;
    std::uint32_t limit_;
};

/**
 * Build the per-column per-plane partial-product leaves for one side of
 * the weight matrix.
 *
 * With constant propagation (the paper's minimization), a set bit wires
 * the row's broadcast endpoint straight into the tree and a clear bit
 * contributes nothing.  Without it (ablation), every row passes through
 * an AND gate against a tied-high/tied-low constant and the tree spans
 * all rows.
 */
std::vector<Stream>
planeLeaves(Builder &builder, Netlist &netlist, const IntMatrix &side,
            BroadcastNetwork &broadcast, std::size_t col, int bit,
            bool constant_propagation)
{
    std::vector<Stream> leaves;
    for (std::size_t r = 0; r < side.rows(); ++r) {
        const bool set = bitAt(side.at(r, col), bit);
        if (constant_propagation) {
            if (set)
                leaves.push_back(broadcast.next(r));
        } else {
            const NodeId tied = set ? builder.const1() : builder.const0();
            const Stream endpoint = broadcast.next(r);
            leaves.push_back(
                {netlist.addAnd(endpoint.node, tied), endpoint.latency});
        }
    }
    return leaves;
}

} // namespace

MatrixCompiler::MatrixCompiler(CompileOptions options) : options_(options)
{
    // User configuration, not internal invariants: stay fatal in
    // Release (inputBits 33..63 would shift past the input planes'
    // encoding, >= 64 is undefined behavior in the engine).
    if (options_.inputBits < 1 || options_.inputBits > 32)
        SPATIAL_FATAL("inputBits must be 1..32, got ", options_.inputBits);
    if (options_.extraOutputBits < 0)
        SPATIAL_FATAL("extraOutputBits must be >= 0, got ",
                      options_.extraOutputBits);
}

const char *
MatrixCompiler::checkCompile(const CompileOptions &options,
                             const IntMatrix &weights)
{
    if (options.inputBits < 1 || options.inputBits > 32)
        return "inputBits must be 1..32";
    if (options.extraOutputBits < 0)
        return "extraOutputBits must be >= 0";
    // Output width >= inputBits(>=1) + weightBits(>=1) + 1 + extra, so
    // 60 or more extra bits can never fit the 62-bit capture.  Bailing
    // here also keeps the width arithmetic below overflow-free for
    // absurd extraOutputBits values.
    if (options.extraOutputBits > 59)
        return "output width exceeds capture capability";
    if (weights.rows() < 1 || weights.cols() < 1)
        return "cannot compile an empty matrix";
    if (options.signMode == SignMode::Unsigned &&
        !weights.isNonNegative())
        return "Unsigned mode requires a non-negative matrix";

    // Every sign mode leaves max|w| representable on one side (P - N =
    // w with both sides non-negative forces max(P, N) >= |w|), so the
    // raw magnitude lower-bounds the compiled weight bitwidth.  The
    // scan negates through uint64 — unlike pnSplit/maxAbs it is
    // defined on INT64_MIN — and rejecting on it first keeps the exact
    // split below inside pnSplit/toCsdDigits domain limits.
    std::uint64_t magnitude = 0;
    for (const auto v : weights.data()) {
        const std::uint64_t m =
            v < 0 ? std::uint64_t{0} - static_cast<std::uint64_t>(v)
                  : static_cast<std::uint64_t>(v);
        magnitude = std::max(magnitude, m);
    }
    const int floor_bits =
        std::max(1, static_cast<int>(std::bit_width(magnitude)));
    const int fixed_bits = options.inputBits +
                           ceilLog2(weights.rows()) + 1 +
                           options.extraOutputBits;
    if (floor_bits > 62 - fixed_bits)
        return "output width exceeds capture capability";

    int weight_bits = floor_bits; // exact for Unsigned (P = w, N = 0)
    switch (options.signMode) {
      case SignMode::Unsigned:
        break;
      case SignMode::PnSplit:
        weight_bits = pnSplit(weights).bitwidth();
        break;
      case SignMode::Csd: {
        Rng rng(options.csdSeed);
        weight_bits = csdSplit(weights, rng).bitwidth();
        break;
      }
    }
    if (weight_bits > 62 - fixed_bits)
        return "output width exceeds capture capability";
    return nullptr;
}

CompiledMatrix
MatrixCompiler::compile(const IntMatrix &weights) const
{
    switch (options_.signMode) {
      case SignMode::Unsigned: {
        // User configuration error, not an internal invariant: keep the
        // check alive in Release builds where asserts compile out.
        if (!weights.isNonNegative())
            SPATIAL_FATAL("Unsigned mode requires a non-negative matrix");
        PnPair pair{weights, IntMatrix(weights.rows(), weights.cols())};
        return compilePair(pair);
      }
      case SignMode::PnSplit:
        return compilePair(pnSplit(weights));
      case SignMode::Csd: {
        Rng rng(options_.csdSeed);
        return compilePair(csdSplit(weights, rng));
      }
    }
    SPATIAL_PANIC("unreachable sign mode");
}

CompiledMatrix
MatrixCompiler::compilePair(const PnPair &pn) const
{
    SPATIAL_ASSERT(pn.p.rows() == pn.n.rows() && pn.p.cols() == pn.n.cols(),
                   "PN shape mismatch");
    SPATIAL_ASSERT(pn.p.isNonNegative() && pn.n.isNonNegative(),
                   "PN sides must be unsigned");
    const std::size_t rows = pn.p.rows();
    const std::size_t cols = pn.p.cols();
    if (rows < 1 || cols < 1)
        SPATIAL_FATAL("cannot compile an empty matrix (", rows, "x", cols,
                      ")");

    CompiledMatrix out;
    out.options_ = options_;
    out.rows_ = rows;
    out.cols_ = cols;
    out.weightBits_ = pn.bitwidth();
    out.weightOnes_ = pn.onesCount();

    const int out_bits = options_.inputBits + out.weightBits_ +
                         ceilLog2(rows) + 1 + options_.extraOutputBits;
    if (out_bits > 62)
        SPATIAL_FATAL("output width ", out_bits,
                      " exceeds capture capability");
    out.outputBits_ = out_bits;

    Netlist &netlist = out.netlist_;
    Builder builder(netlist, options_);

    // One broadcast input per matrix row.
    std::vector<NodeId> inputs(rows);
    for (std::size_t r = 0; r < rows; ++r)
        inputs[r] = netlist.addInput(static_cast<std::uint32_t>(r));

    const bool has_negative_side =
        options_.signMode != SignMode::Unsigned ||
        !options_.constantPropagation;

    // How many consumers each row's broadcast must feed.
    std::vector<std::size_t> demand(rows, 0);
    if (options_.constantPropagation) {
        for (std::size_t r = 0; r < rows; ++r) {
            std::size_t uses = 0;
            for (std::size_t c = 0; c < cols; ++c) {
                uses += static_cast<std::size_t>(
                    popcount64(pn.p.at(r, c)));
                if (has_negative_side)
                    uses += static_cast<std::size_t>(
                        popcount64(pn.n.at(r, c)));
            }
            demand[r] = uses;
        }
    } else {
        const std::size_t sides = has_negative_side ? 2 : 1;
        for (auto &d : demand)
            d = sides * cols * static_cast<std::size_t>(out.weightBits_);
    }
    BroadcastNetwork broadcast(netlist, inputs, demand,
                               options_.broadcastFanoutLimit);

    std::vector<OptStream> column_streams(cols);
    std::vector<OptStream> planes(static_cast<std::size_t>(out.weightBits_));
    for (std::size_t c = 0; c < cols; ++c) {
        // Positive side.
        for (int k = 0; k < out.weightBits_; ++k) {
            planes[static_cast<std::size_t>(k)] = builder.reduce(
                planeLeaves(builder, netlist, pn.p, broadcast, c, k,
                            options_.constantPropagation));
        }
        OptStream pos = builder.bitPositionChain(planes);

        OptStream neg;
        if (has_negative_side) {
            for (int k = 0; k < out.weightBits_; ++k) {
                planes[static_cast<std::size_t>(k)] = builder.reduce(
                    planeLeaves(builder, netlist, pn.n, broadcast, c, k,
                                options_.constantPropagation));
            }
            neg = builder.bitPositionChain(planes);
        }

        column_streams[c] = builder.subtract(pos, neg);
    }

    // Determine the common output start cycle and optionally align every
    // column to it, as the SRAM capture wrapper does.
    std::int32_t max_latency = 0;
    for (const auto &s : column_streams)
        if (s)
            max_latency = std::max(max_latency, s->latency);

    out.outputs_.resize(cols);
    for (std::size_t c = 0; c < cols; ++c) {
        auto &s = column_streams[c];
        if (!s)
            continue; // All-zero column: output is constant 0.
        if (options_.alignOutputs && s->latency < max_latency)
            s = builder.delayTo(*s, max_latency);
        out.outputs_[c] = ColumnOutput{s->node, s->latency};
    }

    out.drainCycles_ = static_cast<std::uint32_t>(
        std::max<std::int32_t>(0, max_latency) + out.outputBits_);

    // Schedule the netlist into its execution tapes once, here, so every
    // simulation of this design shares one immutable plan.
    out.plan_ = std::make_shared<const circuit::ExecPlan>(out.netlist_);
    return out;
}

} // namespace spatial::core
