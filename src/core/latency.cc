#include "core/latency.h"

#include "common/logging.h"

namespace spatial::core
{

int
ceilLog2(std::size_t n)
{
    int bits = 0;
    std::size_t cap = 1;
    while (cap < n) {
        cap <<= 1;
        ++bits;
    }
    return bits;
}

std::uint32_t
eq5Cycles(int input_bits, int weight_bits, std::size_t rows)
{
    SPATIAL_ASSERT(input_bits >= 1 && weight_bits >= 1, "bad widths");
    return static_cast<std::uint32_t>(input_bits + weight_bits +
                                      ceilLog2(rows) + 2);
}

std::uint32_t
fullDrainCycles(int input_bits, int weight_bits, std::size_t rows)
{
    // Exact result width: product width plus accumulation growth plus the
    // PN subtraction's possible extra bit; LSb emerges after tree + chain
    // + subtract.
    const int out_bits = input_bits + weight_bits + ceilLog2(rows) + 1;
    const int lsb_latency = ceilLog2(rows) + 2;
    return static_cast<std::uint32_t>(out_bits + lsb_latency);
}

std::uint32_t
initiationIntervalCycles(int output_bits)
{
    SPATIAL_ASSERT(output_bits >= 1, "output_bits ", output_bits);
    return static_cast<std::uint32_t>(output_bits);
}

double
cyclesToNs(std::uint32_t cycles, double fmax_mhz)
{
    SPATIAL_ASSERT(fmax_mhz > 0.0, "fmax ", fmax_mhz);
    return static_cast<double>(cycles) * 1000.0 / fmax_mhz;
}

double
batchLatencyNs(std::uint32_t latency_cycles, std::uint32_t ii_cycles,
               std::size_t batch, double fmax_mhz)
{
    SPATIAL_ASSERT(batch >= 1, "batch ", batch);
    const auto total =
        static_cast<std::uint32_t>(latency_cycles +
                                   (batch - 1) * std::size_t{ii_cycles});
    return cyclesToNs(total, fmax_mhz);
}

} // namespace spatial::core
