/**
 * @file
 * Runtime column tiling: one logical design composed of column-strip
 * CompiledMatrix tiles — Section VIII executed, not just modeled.
 *
 * The paper's large-scale section observes that "the compute matrix
 * cannot entirely fit in hardware and must be tiled similar to DNN
 * accelerators".  core::planColumnTiles already knows how to cut a
 * matrix into contiguous column strips whose ones-cost fits a device
 * budget; TiledDesign drives that plan from the runtime.  Each tile is
 * an ordinary CompiledMatrix (its own netlist, ExecPlan, SIMD tape,
 * activity gating, and JIT attachment), and because the output columns
 * of a GEMV are independent dot products, the tile results stitch
 * together by column concatenation — the composed result is bit-exact
 * with compiling the whole matrix at once.
 *
 * Execution: every tile consumes the full input vector (tiles split
 * columns, not rows).  multiplyBatchWide shards whole tiles across
 * worker threads — tiles write disjoint column ranges of the output,
 * so no synchronization is needed beyond the join — while each tile
 * runs its own single-threaded engine pass.  A design that fits in
 * one tile delegates straight through to the untiled hot paths.
 */

#ifndef SPATIAL_CORE_TILED_DESIGN_H
#define SPATIAL_CORE_TILED_DESIGN_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/batch_engine.h"
#include "core/compiled_matrix.h"
#include "core/options.h"
#include "core/tiling.h"
#include "matrix/dense.h"

namespace spatial::core
{

/** Device-budget knobs for runtime column tiling. */
struct TileOptions
{
    /**
     * Ones budget per tile (the Figure-10 LUT-cost model: set bits of
     * the compiled P/N pair).  A dim-256 dense 8-bit design lands
     * around 2^18 ones, so the default keeps every tile within the
     * envelope the single-device experiments already exercise while a
     * dim-8192 matrix splits into strips.  0 means "never tile".
     */
    std::size_t onesBudget = std::size_t(1) << 18;

    /**
     * Optional hard cap on columns per tile; 0 disables.  Mostly a
     * test hook (forcing many tiles on small matrices) but also useful
     * to bound per-tile output width independently of density.
     */
    std::size_t maxTileCols = 0;

    /** Field-wise equality (the store serializes these). */
    bool operator==(const TileOptions &) const = default;
};

/**
 * A fixed matrix compiled as one or more column-strip tiles.
 *
 * Immutable after compile() and shared across threads the same way
 * CompiledMatrix is; the tile vector itself holds shared_ptrs so a
 * serializer or store can alias individual tiles.
 */
class TiledDesign
{
  public:
    /**
     * Compile `weights` under `options`, cutting the column space into
     * tiles whose estimated ones-cost fits `tile.onesBudget` (see
     * planColumnTiles; a single over-budget column still gets its own
     * tile).  A matrix within budget compiles as exactly one tile.
     */
    static TiledDesign compile(const IntMatrix &weights,
                               const CompileOptions &options,
                               const TileOptions &tile = {});

    /**
     * Reassemble from already-compiled tiles (the store's load path).
     * `plan.tiles` and `tiles` must correspond one-to-one, cover
     * [0, cols) contiguously, and share `rows`.
     */
    static TiledDesign
    fromTiles(TilePlan plan,
              std::vector<std::shared_ptr<const CompiledMatrix>> tiles,
              std::size_t rows, const TileOptions &tile);

    /** Input dimension (every tile consumes the full vector). */
    std::size_t rows() const { return rows_; }

    /** Output dimension (the concatenation of the tile strips). */
    std::size_t cols() const { return cols_; }

    /** The compiler configuration every tile was built with. */
    const CompileOptions &options() const;

    /** The tiling budget this design was cut under. */
    const TileOptions &tileOptions() const { return tileOptions_; }

    /** The column partition (one entry per tile). */
    const TilePlan &plan() const { return plan_; }

    /** Number of column-strip tiles (1 when the matrix fit). */
    std::size_t tileCount() const { return tiles_.size(); }

    /** True when the design needed more than one tile. */
    bool tiled() const { return tiles_.size() > 1; }

    /** Tile `i`'s compiled strip. */
    const CompiledMatrix &tile(std::size_t i) const { return *tiles_[i]; }

    /** Tile `i`'s strip as a shareable pointer (serializer, JIT). */
    const std::shared_ptr<const CompiledMatrix> &
    tilePtr(std::size_t i) const
    {
        return tiles_[i];
    }

    /**
     * The untiled design; fatal when tiled() — callers that need a
     * plain CompiledMatrix (e.g. TapeGemv-based tooling) must check.
     */
    const CompiledMatrix &single() const;

    /** As single(), as a shareable pointer. */
    const std::shared_ptr<const CompiledMatrix> &singlePtr() const;

    /** Total set bits across every tile's compiled P/N pair. */
    std::size_t weightOnes() const;

    /** Worst-case drain cycles across tiles (tiles run in parallel). */
    std::uint32_t drainCycles() const;

    /** Attached JIT modules summed over tiles. */
    std::size_t jitModuleCount() const;

    /** JIT compile seconds summed over tiles. */
    double jitCompileSeconds() const;

    /** Netlist nodes summed over tiles (size reporting). */
    std::size_t netlistNodes() const;

    /**
     * o = a^T V by cycle-accurate simulation of every tile, results
     * concatenated by column range.  Bit-exact with compiling the
     * whole matrix untiled (the column strips are independent).
     */
    std::vector<std::int64_t>
    multiply(const std::vector<std::int64_t> &a) const;

    /** Scalar-interpreter batch path (reference; every row of batch). */
    IntMatrix multiplyBatch(const IntMatrix &batch) const;

    /**
     * The fast path: every tile's strip runs through the wide tape
     * engine, whole tiles sharded across `sim.threads` workers (0 =
     * hardware concurrency, clamped to the tile count); each tile's
     * pass is single-threaded.  A single-tile design delegates to
     * CompiledMatrix::multiplyBatchWide with `sim` untouched, keeping
     * the untiled hot path identical to before.  When `stats` is
     * non-null every tile's engine accounting is added to it.
     */
    IntMatrix multiplyBatchWide(const IntMatrix &batch,
                                const SimOptions &sim = {},
                                BatchStats *stats = nullptr) const;

  private:
    TiledDesign() = default;

    std::vector<std::shared_ptr<const CompiledMatrix>> tiles_;
    TilePlan plan_;
    TileOptions tileOptions_;
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
};

/**
 * Persistent single-vector executor over a tiled design: one TapeGemv
 * per tile, outputs stitched per call.  The sequential ESN update
 * cannot batch, so keeping every tile's simulator and scratch planes
 * alive across the thousands of steps matters exactly as it does for
 * the untiled TapeGemv.
 */
class TiledGemv
{
  public:
    /** Bind to a design; the design must outlive this object. */
    explicit TiledGemv(const TiledDesign &design,
                       const SimOptions &options = {});

    /** o = x^T V; bit-exact with TiledDesign::multiply(). */
    std::vector<std::int64_t>
    multiply(const std::vector<std::int64_t> &x);

    /** As multiply(), writing into a caller-owned output vector. */
    void multiplyInto(const std::vector<std::int64_t> &x,
                      std::vector<std::int64_t> &out);

    /** Cumulative engine accounting summed over the tile executors. */
    BatchStats engineStats() const;

  private:
    const TiledDesign &design_;
    std::vector<std::unique_ptr<TapeGemv>> gemvs_; //!< one per tile
    std::vector<std::int64_t> scratch_;            //!< per-tile output
};

} // namespace spatial::core

#endif // SPATIAL_CORE_TILED_DESIGN_H
