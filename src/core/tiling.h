/**
 * @file
 * Column tiling for matrices too large for one device — Section VIII:
 * "there may be instances where the compute matrix cannot entirely fit
 * in hardware and must be tiled similar to DNN accelerators."
 *
 * The output columns are independent dot products, so the natural tile
 * is a contiguous column range whose estimated cost fits the LUT
 * budget.  Executing a plan means one configuration per tile: on an
 * FPGA each swap pays the ~200 ms reconfiguration; on the Section VIII
 * CGRA the pipeline reconfiguration hides it.
 */

#ifndef SPATIAL_CORE_TILING_H
#define SPATIAL_CORE_TILING_H

#include <cstddef>
#include <vector>

#include "matrix/dense.h"
#include "matrix/pn_split.h"

namespace spatial::core
{

/** One column-range tile. */
struct Tile
{
    std::size_t colBegin = 0;
    std::size_t colEnd = 0;        //!< one past the end
    std::size_t estimatedLuts = 0; //!< ones-based cost estimate
};

/** A complete tiling of a matrix. */
struct TilePlan
{
    std::vector<Tile> tiles;
    std::size_t lutBudget = 0;

    std::size_t passes() const { return tiles.size(); }
    bool needed() const { return tiles.size() > 1; }
};

/**
 * Greedily pack contiguous columns into tiles whose estimated LUT cost
 * (set bits of the PN pair, the Figure-10 model) stays within budget.
 * A single column exceeding the budget gets its own tile (and a real
 * flow would then shard rows; flagged via estimatedLuts > budget).
 */
TilePlan planColumnTiles(const PnPair &pn, std::size_t lut_budget);

/** Extract the dense column slice [begin, end) of a matrix. */
IntMatrix sliceColumns(const IntMatrix &m, std::size_t begin,
                       std::size_t end);

/**
 * Wall-clock nanoseconds to produce the full output vector by running
 * every tile, paying `reconfig_ns` between consecutive tiles.
 */
double tiledLatencyNs(const TilePlan &plan, double per_tile_ns,
                      double reconfig_ns);

} // namespace spatial::core

#endif // SPATIAL_CORE_TILING_H
